package campaignd

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/obs/metrics"
)

// Options configure a coordinator.
type Options struct {
	// DataDir is the persistence root (campaign.json + shard journals
	// + merged output per campaign). Empty runs memory-only: journals
	// and restart recovery are disabled, merged output still lands at
	// the submit's Out/CSV paths.
	DataDir string
	// LeaseTTL is how long a shard lease lives without a heartbeat;
	// 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// ShardSize is the default jobs-per-shard cap for submits that do
	// not set one; 0 means DefaultShardSize.
	ShardSize int
	// MaxInflightIngest caps concurrent result-ingest requests; excess
	// requests are shed with 429 + Retry-After so a flood of reporting
	// workers degrades into backoff instead of queue collapse. 0 means
	// DefaultMaxInflightIngest; negative disables shedding.
	MaxInflightIngest int
	// Now overrides the clock (tests inject a fake one to drive lease
	// expiry deterministically). Nil means the wall clock. The clock
	// steers only operator-side scheduling — lease expiry, status
	// uptime — never result or merge bytes.
	Now func() time.Time
	// Logf receives operator log lines; nil discards them.
	Logf func(format string, args ...any)
	// OnAllMerged, if set, is called (from a fresh goroutine, at most
	// once per transition) whenever every submitted campaign has
	// merged — cmd/campaignd's -exit-when-done hook.
	OnAllMerged func()
}

// DefaultLeaseTTL is generous against GC pauses and slow shards while
// still re-issuing a lost node's shard within seconds.
const DefaultLeaseTTL = 15 * time.Second

// DefaultMaxInflightIngest is far above what a healthy fleet holds
// open (ingestion is serialized on the server mutex, so in-flight
// requests pile up only when the coordinator is overloaded); hitting
// it means shedding is the right call.
const DefaultMaxInflightIngest = 256

// Server is the coordinator: campaign registry, shard lease manager,
// result ingester, and merger. It is an http.Handler; all state is
// guarded by mu (the API is low-rate control traffic — results arrive
// in batches — so a single mutex is the right tool).
type Server struct {
	opts Options
	now  func() time.Time
	mux  *http.ServeMux

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string // campaign IDs in submission order
	leases    map[string]*lease
	workers   map[string]*workerSeen
	// completedLeases remembers every lease ID whose Complete was
	// accepted, so a retried Complete (response lost after the commit)
	// acknowledges idempotently instead of 410ing the worker into
	// thinking it lost a shard it actually finished.
	completedLeases map[string]bool
	nextID          int
	nextLease       int
	started         time.Time

	// Counters for the status page (guarded by mu).
	leasesIssued    int
	resultsIngested int
	duplicates      int
	reissues        int

	// Ingest admission control: in-flight ingest requests and the shed
	// count live outside mu so admission never queues behind ingestion.
	ingestInflight atomic.Int64
	shed           atomic.Uint64

	// reg accumulates the coordinator's own instruments (per-shard
	// ingestion-latency histograms); telemetry stores the latest
	// cumulative delta per worker. Both are internally synchronized.
	reg       *metrics.Registry
	telemetry *metrics.Store
}

type campaignState struct {
	id     string
	req    SubmitRequest
	fp     string
	jobs   int
	shards []*shardState
	merged bool
	// mergedJSONL is the merged canonical output, retained for the
	// output endpoint.
	mergedJSONL []byte
	mergeErr    string
	dir         string // persistence dir, "" when memory-only
}

type shardState struct {
	rng      ShardRange
	state    string // ShardPending | ShardLeased | ShardDone
	leaseID  string
	worker   string
	reissues int
	failed   int
	results  map[int]campaign.Result
	journal  *shardJournal
	// encs sums the victim encryptions of ingested (and
	// journal-replayed) results; latMS observes each live-ingested
	// result's wall duration before canonicalization strips it.
	encs  uint64
	latMS *metrics.Histogram
}

type lease struct {
	id       string
	campaign string
	shard    int
	worker   string
	expiry   time.Time
}

type workerSeen struct {
	lastSeen time.Time
	leases   int
	results  int
}

// NewServer builds a coordinator and, when opts.DataDir is set,
// recovers every campaign found there (completed shards stay
// completed; mid-shard progress resumes from the shard journals; fully
// complete campaigns re-merge idempotently).
func NewServer(opts Options) (*Server, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = DefaultShardSize
	}
	now := opts.Now
	if now == nil {
		now = time.Now //grinchvet:ignore wallclock lease expiry and status uptime are operator scheduling; merge bytes are clock-free
	}
	if opts.MaxInflightIngest == 0 {
		opts.MaxInflightIngest = DefaultMaxInflightIngest
	}
	s := &Server{
		opts:            opts,
		now:             now,
		campaigns:       map[string]*campaignState{},
		leases:          map[string]*lease{},
		workers:         map[string]*workerSeen{},
		completedLeases: map[string]bool{},
		reg:             metrics.New(),
		telemetry:       metrics.NewStore(),
	}
	s.started = s.now()
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaignd: creating data dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.mux = s.buildMux()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Close releases the shard journal file handles.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, id := range s.order {
		for _, sh := range s.campaigns[id].shards {
			if err := sh.journal.Close(); err != nil && first == nil {
				first = err
			}
			sh.journal = nil
		}
	}
	return first
}

// recover rebuilds campaign state from the data directory.
func (s *Server) recover() error {
	dirs, err := listCampaignDirs(s.opts.DataDir)
	if err != nil {
		return fmt.Errorf("campaignd: scanning data dir: %w", err)
	}
	for _, name := range dirs {
		dir := filepath.Join(s.opts.DataDir, name)
		req, err := loadSubmit(dir)
		if err != nil {
			return fmt.Errorf("campaignd: recovering %s: %w", name, err)
		}
		c, err := s.buildCampaign(name, req, dir)
		if err != nil {
			return fmt.Errorf("campaignd: recovering %s: %w", name, err)
		}
		s.campaigns[name] = c
		s.order = append(s.order, name)
		if n := campaignSeq(name); n >= s.nextID {
			s.nextID = n + 1
		}
		done := 0
		for _, sh := range c.shards {
			if sh.state == ShardDone {
				done++
			}
		}
		s.logf("recovered campaign %s (%s): %d jobs, %d/%d shards done", name, req.Spec.Name, c.jobs, done, len(c.shards))
		if done == len(c.shards) && !c.merged {
			if err := s.mergeLocked(c); err != nil {
				return fmt.Errorf("campaignd: re-merging recovered campaign %s: %w", name, err)
			}
		}
	}
	return nil
}

// campaignSeq parses the numeric suffix of a campaign ID ("c0007" →
// 7); unknown shapes return -1.
func campaignSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "c%d", &n); err != nil {
		return -1
	}
	return n
}

// buildCampaign expands and shards a submit request, opening (and
// replaying) shard journals when persistence is on. A shard whose
// journal already covers its whole range comes back done.
func (s *Server) buildCampaign(id string, req SubmitRequest, dir string) (*campaignState, error) {
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	shardSize := req.ShardSize
	if shardSize <= 0 {
		shardSize = s.opts.ShardSize
	}
	jobs := req.Spec.NumJobs()
	c := &campaignState{
		id:   id,
		req:  req,
		fp:   req.Spec.Fingerprint(),
		jobs: jobs,
		dir:  dir,
	}
	for _, rng := range Partition(jobs, shardSize) {
		sh := &shardState{rng: rng, state: ShardPending, results: map[int]campaign.Result{}}
		sh.latMS = s.reg.WallHistogram("campaignd_shard_job_ms",
			"Per-job wall duration at ingestion, milliseconds, by shard.",
			metrics.DurationMSBuckets,
			metrics.L("campaign", id), metrics.L("shard", fmt.Sprint(rng.Shard)))
		if dir != "" {
			j, prior, err := openShardJournal(dir, id, c.fp, rng)
			if err != nil {
				return nil, err
			}
			sh.journal = j
			sh.results = prior
			// Count failures and detect completion by walking the range
			// in index order (deterministic, and validates coverage).
			complete := true
			for i := rng.Start; i < rng.End; i++ {
				r, ok := prior[i]
				if !ok {
					complete = false
					continue
				}
				if r.Failed {
					sh.failed++
				}
				sh.encs += r.Encryptions
			}
			if complete {
				sh.state = ShardDone
			}
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Submit registers a campaign and returns its ID. Exposed for
// in-process embedding (tests, cmd/campaignd's boot submit); the HTTP
// POST handler is a thin wrapper.
func (s *Server) Submit(req SubmitRequest) (SubmitResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("c%04d", s.nextID)
	dir := ""
	if s.opts.DataDir != "" {
		dir = filepath.Join(s.opts.DataDir, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return SubmitResponse{}, fmt.Errorf("campaignd: creating campaign dir: %w", err)
		}
		if err := saveSubmit(dir, req); err != nil {
			return SubmitResponse{}, fmt.Errorf("campaignd: persisting submit: %w", err)
		}
	}
	c, err := s.buildCampaign(id, req, dir)
	if err != nil {
		return SubmitResponse{}, err
	}
	s.nextID++
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.logf("campaign %s (%s) submitted: %d jobs in %d shards", id, req.Spec.Name, c.jobs, len(c.shards))
	return SubmitResponse{ID: id, Jobs: c.jobs, Shards: len(c.shards)}, nil
}

// sweepLocked revokes expired leases, returning their shards to the
// pending pool with their ingested results intact. Called before every
// lease-sensitive operation; visit order is irrelevant (every expired
// lease is revoked) but sorted for stable logs.
func (s *Server) sweepLocked() {
	now := s.now()
	var expired []string
	for id, l := range s.leases { //grinchvet:ignore maporder keys are sorted below; every expired lease is revoked regardless of visit order
		if now.After(l.expiry) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		l := s.leases[id]
		delete(s.leases, id)
		c := s.campaigns[l.campaign]
		sh := c.shards[l.shard]
		if sh.state == ShardLeased && sh.leaseID == id {
			sh.state = ShardPending
			sh.leaseID = ""
			sh.reissues++
			s.reissues++
			s.logf("lease %s (worker %s, %s %s) expired; shard returned to pending with %d/%d results kept",
				id, l.worker, l.campaign, sh.rng, len(sh.results), sh.rng.Len())
		}
	}
}

// Acquire grants the next pending shard (campaigns in submission
// order, shards in index order) to the worker, or reports no work.
func (s *Server) Acquire(worker string) LeaseResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	s.seenLocked(worker).leases++
	for _, id := range s.order {
		c := s.campaigns[id]
		if c.merged {
			continue
		}
		for _, sh := range c.shards {
			if sh.state != ShardPending {
				continue
			}
			l := &lease{
				id:       fmt.Sprintf("l%06d", s.nextLease),
				campaign: id,
				shard:    sh.rng.Shard,
				worker:   worker,
				expiry:   s.now().Add(s.opts.LeaseTTL),
			}
			s.nextLease++
			s.leases[l.id] = l
			s.leasesIssued++
			sh.state = ShardLeased
			sh.leaseID = l.id
			sh.worker = worker
			done := make([]int, 0, len(sh.results))
			for idx := range sh.results { //grinchvet:ignore maporder key collection; sorted on the next line
				done = append(done, idx)
			}
			sort.Ints(done)
			s.logf("lease %s: %s %s → worker %s (%d results already ingested)", l.id, id, sh.rng, worker, len(done))
			return LeaseResponse{Lease: &Lease{
				ID:         l.id,
				Campaign:   id,
				ShardRange: sh.rng,
				Spec:       c.req.Spec,
				DoneJobs:   done,
				TTLMS:      s.opts.LeaseTTL.Milliseconds(),
			}}
		}
	}
	return LeaseResponse{AllDone: s.allMergedLocked()}
}

func (s *Server) allMergedLocked() bool {
	for _, id := range s.order {
		if !s.campaigns[id].merged {
			return false
		}
	}
	return true
}

// seenLocked updates the worker directory.
func (s *Server) seenLocked(worker string) *workerSeen {
	w := s.workers[worker]
	if w == nil {
		w = &workerSeen{}
		s.workers[worker] = w
	}
	w.lastSeen = s.now()
	return w
}

// leaseErr classifies lease-validation failures for HTTP mapping.
type leaseErr struct {
	gone bool
	msg  string
}

func (e *leaseErr) Error() string { return e.msg }

// validLocked resolves a live lease after sweeping.
func (s *Server) validLocked(leaseID string) (*lease, *campaignState, *shardState, error) {
	s.sweepLocked()
	l, ok := s.leases[leaseID]
	if !ok {
		return nil, nil, nil, &leaseErr{gone: true, msg: fmt.Sprintf("lease %s is unknown or expired", leaseID)}
	}
	c := s.campaigns[l.campaign]
	sh := c.shards[l.shard]
	if sh.leaseID != l.id || sh.state != ShardLeased {
		return nil, nil, nil, &leaseErr{gone: true, msg: fmt.Sprintf("lease %s was superseded", leaseID)}
	}
	return l, c, sh, nil
}

// Heartbeat extends a live lease by one TTL.
func (s *Server) Heartbeat(leaseID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, _, _, err := s.validLocked(leaseID)
	if err != nil {
		return err
	}
	l.expiry = s.now().Add(s.opts.LeaseTTL)
	s.seenLocked(l.worker)
	return nil
}

// Ingest records a batch of results against a live lease. Duplicates
// (re-executions after a re-issue, or a retried batch after a dropped
// response) are discarded: results are pure functions of (spec,
// index), so the first ingested copy is as good as any.
func (s *Server) Ingest(leaseID string, results []campaign.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, _, sh, err := s.validLocked(leaseID)
	if err != nil {
		return err
	}
	w := s.seenLocked(l.worker)
	l.expiry = s.now().Add(s.opts.LeaseTTL) // a result batch is as good as a heartbeat
	for _, r := range results {
		if !sh.rng.Contains(r.Job) {
			return fmt.Errorf("campaignd: lease %s reported job %d outside %s", leaseID, r.Job, sh.rng)
		}
		// Latency must be read before Canonical strips it.
		wallNS := r.DurationNS
		r = r.Canonical()
		if _, dup := sh.results[r.Job]; dup {
			s.duplicates++
			continue
		}
		if err := sh.journal.Append(r); err != nil {
			return err
		}
		sh.results[r.Job] = r
		if r.Failed {
			sh.failed++
		}
		sh.encs += r.Encryptions
		if wallNS > 0 {
			sh.latMS.Observe(uint64(wallNS) / 1e6)
		}
		s.resultsIngested++
		w.results++
	}
	return nil
}

// ApplyTelemetry installs a worker's cumulative metrics delta. Stale
// deltas (sequence number not beyond the last applied) are ignored, so
// retried batches and journal replays never double-count. Exposed for
// the HTTP handlers and tests.
func (s *Server) ApplyTelemetry(worker string, d metrics.Delta) bool {
	return s.telemetry.Apply(worker, d)
}

// admitIngest reserves one in-flight ingest slot, returning a release
// func and whether the request was admitted. A refused request was
// shed: the caller answers 429 + Retry-After and the client's backoff
// does the queueing the server declined to.
func (s *Server) admitIngest() (release func(), ok bool) {
	limit := s.opts.MaxInflightIngest
	if limit < 0 {
		return func() {}, true
	}
	if s.ingestInflight.Add(1) > int64(limit) {
		s.ingestInflight.Add(-1)
		s.shed.Add(1)
		return nil, false
	}
	return func() { s.ingestInflight.Add(-1) }, true
}

// Shed returns how many ingest requests have been refused with 429.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Complete marks a leased shard done, verifying full coverage of its
// range, and merges the campaign when it was the last shard. Replays
// of an already-accepted completion (the response was lost after the
// commit) are acknowledged idempotently.
func (s *Server) Complete(leaseID string) error {
	s.mu.Lock()
	l, c, sh, err := s.validLocked(leaseID)
	if err != nil {
		replay := s.completedLeases[leaseID]
		s.mu.Unlock()
		if replay {
			return nil
		}
		return err
	}
	for i := sh.rng.Start; i < sh.rng.End; i++ {
		if _, ok := sh.results[i]; !ok {
			s.mu.Unlock()
			return fmt.Errorf("campaignd: lease %s completed %s with job %d missing", leaseID, sh.rng, i)
		}
	}
	delete(s.leases, leaseID)
	s.completedLeases[leaseID] = true
	sh.state = ShardDone
	sh.leaseID = ""
	s.seenLocked(l.worker)
	s.logf("shard done: %s %s by worker %s", c.id, sh.rng, l.worker)

	var mergeErr error
	allDone := true
	for _, other := range c.shards {
		if other.state != ShardDone {
			allDone = false
			break
		}
	}
	if allDone {
		mergeErr = s.mergeLocked(c)
	}
	notify := allDone && mergeErr == nil && s.allMergedLocked() && s.opts.OnAllMerged != nil
	s.mu.Unlock()
	if notify {
		go s.opts.OnAllMerged()
	}
	return mergeErr
}

// mergeLocked folds a fully executed campaign's shard results, in
// shard order and job-index order within each shard, into the merged
// JSONL (always) and the submit's Out/CSV files (when set) — the
// byte-deterministic projection: identical to a single-process
// cmd/campaign run of the same spec.
func (s *Server) mergeLocked(c *campaignState) error {
	var jsonlBuf deterministicBuffer
	sinks := []campaign.Sink{&campaign.JSONLSink{W: &jsonlBuf}}
	var closers []func() error
	addFile := func(path string, mk func(f *os.File) campaign.Sink) error {
		if path == "" {
			return nil
		}
		if c.dir != "" && !filepath.IsAbs(path) {
			path = filepath.Join(c.dir, path)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		sinks = append(sinks, mk(f))
		closers = append(closers, f.Close)
		return nil
	}
	if err := addFile(c.req.Out, func(f *os.File) campaign.Sink { return &campaign.JSONLSink{W: f} }); err != nil {
		return err
	}
	if err := addFile(c.req.CSV, func(f *os.File) campaign.Sink { return &campaign.CSVSink{W: f} }); err != nil {
		return err
	}

	err := func() error {
		for _, sink := range sinks {
			if err := sink.Begin(c.req.Spec, c.jobs); err != nil {
				return err
			}
		}
		for _, sh := range c.shards {
			for i := sh.rng.Start; i < sh.rng.End; i++ {
				r, ok := sh.results[i]
				if !ok {
					return fmt.Errorf("campaignd: merge of %s found job %d missing from %s", c.id, i, sh.rng)
				}
				for _, sink := range sinks {
					if err := sink.Write(r); err != nil {
						return err
					}
				}
			}
		}
		for _, sink := range sinks {
			if err := sink.Close(); err != nil {
				return err
			}
		}
		return nil
	}()
	for _, cl := range closers {
		if cerr := cl(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		c.mergeErr = err.Error()
		return err
	}
	c.merged = true
	c.mergeErr = ""
	c.mergedJSONL = jsonlBuf.b
	s.logf("campaign %s (%s) merged: %d jobs", c.id, c.req.Spec.Name, c.jobs)
	return nil
}

// deterministicBuffer is a minimal append-only io.Writer (bytes.Buffer
// without the unused surface).
type deterministicBuffer struct{ b []byte }

func (d *deterministicBuffer) Write(p []byte) (int, error) {
	d.b = append(d.b, p...)
	return len(p), nil
}

// Statuses returns every campaign's status in submission order,
// without per-shard detail.
func (s *Server) Statuses() []CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.campaigns[id], false))
	}
	return out
}

// Status returns one campaign's status with shard detail.
func (s *Server) Status(id string) (CampaignStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	c, ok := s.campaigns[id]
	if !ok {
		return CampaignStatus{}, false
	}
	return s.statusLocked(c, true), true
}

func (s *Server) statusLocked(c *campaignState, shards bool) CampaignStatus {
	st := CampaignStatus{
		ID:          c.id,
		Name:        c.req.Spec.Name,
		Fingerprint: c.fp,
		State:       CampaignRunning,
		Jobs:        c.jobs,
	}
	if c.merged {
		st.State = CampaignMerged
	}
	var snap []metrics.Series
	if shards {
		snap = s.reg.Snapshot()
	}
	for _, sh := range c.shards {
		st.Done += len(sh.results)
		st.Failed += sh.failed
		if shards {
			row := ShardStatus{
				ShardRange:  sh.rng,
				State:       sh.state,
				Worker:      sh.worker,
				Done:        len(sh.results),
				Reissues:    sh.reissues,
				Encryptions: sh.encs,
			}
			ser, ok := metrics.Find(snap, "campaignd_shard_job_ms",
				metrics.L("campaign", c.id), metrics.L("shard", fmt.Sprint(sh.rng.Shard)))
			if ok && ser.Count() > 0 {
				row.P50MS = ser.Quantile(0.50)
				row.P90MS = ser.Quantile(0.90)
				row.P99MS = ser.Quantile(0.99)
			}
			st.Shards = append(st.Shards, row)
		}
	}
	return st
}

// Output returns a merged campaign's canonical JSONL bytes.
func (s *Server) Output(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("campaignd: unknown campaign %q", id)
	}
	if !c.merged {
		return nil, fmt.Errorf("campaignd: campaign %s has not merged yet", id)
	}
	return c.mergedJSONL, nil
}
