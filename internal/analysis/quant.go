package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"math"
	"sort"
	"strconv"
	"strings"

	"grinch/internal/cache"
)

// The quantitative leakage model turns the boolean leakage findings
// into bits-per-observation estimates, the quantity the GRINCH
// convergence curves actually measure. For a secret-index finding the
// model is table geometry: a table of E entries of B bytes spans
// L = ⌈E·B / lineBytes⌉ cache lines, so one probe observation of the
// access — learning which line was touched — yields at most
// log2(min(L, E)) bits about the index (the min caps the estimate at
// the index's own entropy: when an entry spans several lines, the
// extra lines resolve the offset within the entry, not the index).
// A secret-branch finding is a 1-bit channel per evaluation.
//
// Geometry is resolved statically:
//
//   - array types carry their length in the type ([16]uint8 → 16×1B);
//   - package-level or local slices declared with a composite literal
//     or make([]T, constant) are sized from the declaration;
//   - //grinch:geometry entries=E bytes=B on a var declaration is the
//     escape hatch for containers the resolver cannot size (it also
//     overrides the inferred geometry).
//
// Element sizes come from go/types with the gc/amd64 size model — the
// tables this repository cares about are byte and word arrays, where
// every mainstream model agrees.
//
// The closing half of the loop lives in internal/analysis/quantcheck:
// the static estimate is checked against the measured
// bits-eliminated-per-observation fitted from traced survivor curves.

// geometryDirective is the annotation overriding geometry inference:
//
//	//grinch:geometry entries=16 bytes=1
//
// on a var declaration (GenDecl doc, ValueSpec doc or line comment).
const geometryDirective = "grinch:geometry"

// DefaultQuantLineBytes is the modeled cache-line size when the config
// does not choose one: the paper's 1-byte word, the finest Table I
// geometry (cache.PaperLineSizes()[0]).
const DefaultQuantLineBytes = 1

// Geometry is the static shape of an indexed container.
type Geometry struct {
	// Entries is the number of indexable entries; EntryBytes the size
	// of one entry in bytes.
	Entries    int64
	EntryBytes int64
	// Source records how the geometry was resolved: "array",
	// "literal", "make" or "annotation".
	Source string
}

// TableBytes is the container's total footprint.
func (g Geometry) TableBytes() int64 { return g.Entries * g.EntryBytes }

// Quant is the quantitative leakage estimate attached to a finding
// when Config.Quant is set.
type Quant struct {
	// Entries/EntryBytes are the resolved container geometry
	// (secret-index only; zero for branches and unresolved findings).
	Entries    int64 `json:"entries,omitempty"`
	EntryBytes int64 `json:"entry_bytes,omitempty"`
	// LineBytes is the modeled cache-line size; LinesObservable the
	// number of lines the container spans under it.
	LineBytes       int   `json:"line_bytes,omitempty"`
	LinesObservable int64 `json:"lines_observable,omitempty"`
	// BitsPerObservation is the modeled per-observation yield:
	// log2(min(LinesObservable, Entries)) for an index, 1 for a
	// branch, 0 when the geometry is unresolved.
	BitsPerObservation float64 `json:"bits_per_observation"`
	// Source is the geometry provenance ("array", "literal", "make",
	// "annotation"), "branch" for the 1-bit branch model, or
	// "unresolved".
	Source string `json:"geometry_source"`
	// Resolved is false when the container could not be sized; the
	// finding then needs a //grinch:geometry annotation to enter the
	// budget.
	Resolved bool `json:"resolved"`
}

// suffix renders the bracketed quant annotation appended to finding
// messages in quant mode.
func (q *Quant) suffix() string {
	switch {
	case q == nil:
		return ""
	case q.Source == "branch":
		return fmt.Sprintf(" [%.2f bits/evaluation]", q.BitsPerObservation)
	case !q.Resolved:
		return " [geometry unresolved — annotate with //grinch:geometry]"
	default:
		return fmt.Sprintf(" [%d entries × %dB → %d lines @%dB, %.2f bits/obs]",
			q.Entries, q.EntryBytes, q.LinesObservable, q.LineBytes, q.BitsPerObservation)
	}
}

// BaselineColumn renders the quant column of a v2 baseline record.
func (q *Quant) BaselineColumn() string {
	switch {
	case q == nil:
		return ""
	case q.Source == "branch":
		return fmt.Sprintf("bits=%.2f", q.BitsPerObservation)
	case !q.Resolved:
		return "unresolved"
	default:
		return fmt.Sprintf("entries=%d bytes=%d lines=%d bits=%.2f",
			q.Entries, q.EntryBytes, q.LinesObservable, q.BitsPerObservation)
	}
}

// quantLineBytes returns the configured model line size.
func (c Config) quantLineBytes() int {
	if c.QuantLineBytes > 0 {
		return c.QuantLineBytes
	}
	return DefaultQuantLineBytes
}

// quantForIndex builds the estimate for a secret-index finding on
// container expression x.
func quantForIndex(pass *Pass, x ast.Expr) *Quant {
	lineBytes := pass.Config.quantLineBytes()
	g, ok := resolveGeometry(pass.World, pass.Pkg.Info, x)
	if !ok {
		return &Quant{LineBytes: lineBytes, Source: "unresolved"}
	}
	return quantify(g, lineBytes)
}

// quantify applies the line model to a resolved geometry.
func quantify(g Geometry, lineBytes int) *Quant {
	lines := int64(cache.LinesSpanned(int(g.TableBytes()), lineBytes))
	eff := lines
	if g.Entries < eff {
		eff = g.Entries
	}
	bits := 0.0
	if eff > 1 {
		bits = math.Log2(float64(eff))
	}
	return &Quant{
		Entries:            g.Entries,
		EntryBytes:         g.EntryBytes,
		LineBytes:          lineBytes,
		LinesObservable:    lines,
		BitsPerObservation: bits,
		Source:             g.Source,
		Resolved:           true,
	}
}

// quantForBranch is the secret-branch model: one bit per evaluation.
func quantForBranch() *Quant {
	return &Quant{BitsPerObservation: 1, Source: "branch", Resolved: true}
}

// resolveGeometry sizes the container behind an indexed expression:
// annotation first, then the array type, then declaration inference.
func resolveGeometry(w *World, info *types.Info, x ast.Expr) (Geometry, bool) {
	obj := referencedObject(info, x)
	if obj != nil {
		if g, ok := w.geoms[obj]; ok && g.Source == "annotation" {
			return g, true
		}
	}
	if g, ok := geometryFromType(info, x); ok {
		return g, true
	}
	if obj != nil {
		if g, ok := w.geoms[obj]; ok {
			return g, true
		}
	}
	return Geometry{}, false
}

// geometryFromType sizes arrays (and pointers to arrays) from their
// type alone — the length is part of the type, no declaration needed.
// Rows of 2-D tables resolve here too: indexing [16][4]uint8 selects
// among 16 entries of 4 bytes each.
func geometryFromType(info *types.Info, x ast.Expr) (Geometry, bool) {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return Geometry{}, false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	arr, ok := t.(*types.Array)
	if !ok {
		return Geometry{}, false
	}
	sz := sizeOf(arr.Elem())
	if sz <= 0 || arr.Len() <= 0 {
		return Geometry{}, false
	}
	return Geometry{Entries: arr.Len(), EntryBytes: sz, Source: "array"}, true
}

// referencedObject resolves the variable an expression names, if any.
func referencedObject(info *types.Info, x ast.Expr) types.Object {
	switch t := x.(type) {
	case *ast.Ident:
		if o := info.Uses[t]; o != nil {
			return o
		}
		return info.Defs[t]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[t]; ok {
			return sel.Obj()
		}
		return info.Uses[t.Sel]
	case *ast.ParenExpr:
		return referencedObject(info, t.X)
	case *ast.StarExpr:
		return referencedObject(info, t.X)
	}
	return nil
}

// gcSizes is the size model used for element sizes. SizesFor never
// returns nil for the gc compiler, but guard anyway.
var gcSizes = func() types.Sizes {
	if s := types.SizesFor("gc", "amd64"); s != nil {
		return s
	}
	return &types.StdSizes{WordSize: 8, MaxAlign: 8}
}()

// sizeOf returns the byte size of a type, or 0 when it cannot be
// determined (stub-imported or invalid types).
func sizeOf(t types.Type) (n int64) {
	if t == nil {
		return 0
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Invalid {
		return 0
	}
	// go/types sizes can panic on malformed (stub-imported) types;
	// treat those as unsizable rather than crashing the analyzer.
	defer func() {
		if recover() != nil {
			n = 0
		}
	}()
	return gcSizes.Sizeof(t)
}

// collectGeometries indexes, module-wide, every container the quant
// model can size from declarations: //grinch:geometry annotations and
// slices declared with composite literals or make([]T, constant).
// Conflicting inferences (a slice reassigned to a different length)
// degrade to unresolved rather than guessing.
func collectGeometries(w *World) map[types.Object]Geometry {
	geoms := map[types.Object]Geometry{}
	conflicted := map[types.Object]bool{}

	record := func(o types.Object, g Geometry) {
		if o == nil || g.Entries <= 0 || g.EntryBytes <= 0 {
			return
		}
		if g.Source == "annotation" {
			geoms[o] = g // annotations always win
			return
		}
		if conflicted[o] {
			return
		}
		if prev, ok := geoms[o]; ok {
			if prev.Source == "annotation" {
				return
			}
			if prev.Entries != g.Entries || prev.EntryBytes != g.EntryBytes {
				conflicted[o] = true
				delete(geoms, o)
			}
			return
		}
		geoms[o] = g
	}

	for _, pkg := range w.Pkgs {
		for _, file := range pkg.Files {
			collectFileGeometries(pkg, file, record)
		}
	}
	return geoms
}

func collectFileGeometries(pkg *Package, file *ast.File, record func(types.Object, Geometry)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.GenDecl:
			declG, declOK := parseGeometryDirective(d.Doc)
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				g, gok := parseGeometryDirective(vs.Doc)
				if !gok {
					g, gok = parseGeometryDirective(vs.Comment)
				}
				if !gok && declOK {
					g, gok = declG, true
				}
				for i, name := range vs.Names {
					o := pkg.Info.Defs[name]
					if gok {
						record(o, g)
						continue
					}
					if i < len(vs.Values) {
						if ig, ok := inferValueGeometry(pkg.Info, vs.Values[i]); ok {
							record(o, ig)
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(d.Lhs) != len(d.Rhs) {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				o := pkg.Info.Defs[id]
				if o == nil {
					o = pkg.Info.Uses[id]
				}
				if ig, ok := inferValueGeometry(pkg.Info, d.Rhs[i]); ok {
					record(o, ig)
				}
			}
		}
		return true
	})
}

// parseGeometryDirective extracts entries=E bytes=B from a
// //grinch:geometry comment line.
func parseGeometryDirective(cg *ast.CommentGroup) (Geometry, bool) {
	if cg == nil {
		return Geometry{}, false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, geometryDirective) {
			continue
		}
		rest := strings.TrimPrefix(text, geometryDirective)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		g := Geometry{Source: "annotation"}
		for _, f := range strings.Fields(rest) {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				continue
			}
			switch k {
			case "entries":
				g.Entries = n
			case "bytes":
				g.EntryBytes = n
			}
		}
		if g.Entries > 0 {
			if g.EntryBytes == 0 {
				g.EntryBytes = 1
			}
			return g, true
		}
	}
	return Geometry{}, false
}

// inferValueGeometry sizes a slice initializer: a composite literal
// (keyed or positional) or make([]T, constantLen).
func inferValueGeometry(info *types.Info, e ast.Expr) (Geometry, bool) {
	switch v := e.(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[v]
		if !ok || tv.Type == nil {
			return Geometry{}, false
		}
		sl, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			return Geometry{}, false
		}
		sz := sizeOf(sl.Elem())
		if sz <= 0 {
			return Geometry{}, false
		}
		return Geometry{Entries: compositeLen(info, v), EntryBytes: sz, Source: "literal"}, true
	case *ast.CallExpr:
		fn, ok := v.Fun.(*ast.Ident)
		if !ok || len(v.Args) < 2 {
			return Geometry{}, false
		}
		if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "make" {
			return Geometry{}, false
		}
		tv, ok := info.Types[v.Args[0]]
		if !ok || tv.Type == nil {
			return Geometry{}, false
		}
		sl, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			return Geometry{}, false
		}
		sz := sizeOf(sl.Elem())
		n := constInt(info, v.Args[1])
		if sz <= 0 || n <= 0 {
			return Geometry{}, false
		}
		return Geometry{Entries: n, EntryBytes: sz, Source: "make"}, true
	}
	return Geometry{}, false
}

// compositeLen computes a slice literal's length, honoring keyed
// indices ({5: x} has 6 entries).
func compositeLen(info *types.Info, cl *ast.CompositeLit) int64 {
	var n, next int64
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if k := constInt(info, kv.Key); k >= 0 {
				next = k
			}
		}
		next++
		if next > n {
			n = next
		}
	}
	return n
}

// constInt evaluates a constant integer expression, -1 when not one.
func constInt(info *types.Info, e ast.Expr) int64 {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return -1
	}
	n, err := strconv.ParseInt(tv.Value.ExactString(), 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// BudgetRow is one aggregate of the leakage budget: the summed modeled
// bits-per-observation of the findings in one function or package.
type BudgetRow struct {
	Pkg  string `json:"pkg"`
	Func string `json:"func,omitempty"`
	// Findings counts the quant-carrying findings aggregated;
	// Unresolved how many of them lacked geometry (contributing 0).
	Findings   int     `json:"findings"`
	Unresolved int     `json:"unresolved,omitempty"`
	Bits       float64 `json:"bits_per_observation"`
}

// Budgets aggregates quant-carrying findings into per-function and
// per-package leakage budgets, sorted by (pkg, func). Findings without
// quant data (determinism findings, non-quant runs) are skipped.
func Budgets(findings []Finding) (perFunc, perPkg []BudgetRow) {
	type key struct{ pkg, fn string }
	aggregate := func(keyOf func(Finding) key) []BudgetRow {
		acc := map[key]*BudgetRow{}
		var order []key
		for _, f := range findings {
			if f.Quant == nil {
				continue
			}
			k := keyOf(f)
			r, ok := acc[k]
			if !ok {
				r = &BudgetRow{Pkg: k.pkg, Func: k.fn}
				acc[k] = r
				order = append(order, k)
			}
			r.Findings++
			if !f.Quant.Resolved {
				r.Unresolved++
			}
			r.Bits += f.Quant.BitsPerObservation
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].pkg != order[j].pkg {
				return order[i].pkg < order[j].pkg
			}
			return order[i].fn < order[j].fn
		})
		rows := make([]BudgetRow, 0, len(order))
		for _, k := range order {
			rows = append(rows, *acc[k])
		}
		return rows
	}
	perFunc = aggregate(func(f Finding) key { return key{f.Pkg, f.Func} })
	perPkg = aggregate(func(f Finding) key { return key{pkg: f.Pkg} })
	return perFunc, perPkg
}
