// Package suppress is a grinchvet fixture for //grinchvet:ignore: a
// suppressed finding must vanish, its unsuppressed twin must survive,
// and an ignore for a different rule must not help.
package suppress

var table = [16]uint8{0: 1}

//grinch:secret s
func Suppressed(s uint64) uint8 {
	//grinchvet:ignore secret-index fixture: known and accepted
	return table[s&0xf]
}

//grinch:secret s
func SuppressedInline(s uint64) uint8 {
	return table[s&0xf] //grinchvet:ignore secret-index fixture: same-line form
}

//grinch:secret s
func NotSuppressed(s uint64) uint8 {
	return table[s&0xf] // want "secret-index"
}

//grinch:secret s
func WrongRule(s uint64) uint8 {
	//grinchvet:ignore wallclock wrong rule, must not suppress
	return table[s&0xf] // want "secret-index"
}
