package present

import (
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Official PRESENT-80 test vectors from the CHES 2007 paper (Appendix I).
var present80KATs = []struct {
	key, pt, ct string
}{
	{"00000000000000000000", "0000000000000000", "5579c1387b228445"},
	{"ffffffffffffffffffff", "0000000000000000", "e72c46c0f5945049"},
	{"00000000000000000000", "ffffffffffffffff", "a112ffc72f68417b"},
	{"ffffffffffffffffffff", "ffffffffffffffff", "3333dcd3213210d2"},
}

func mustKey80(t *testing.T, s string) [10]byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 10 {
		t.Fatalf("bad key literal %q", s)
	}
	var k [10]byte
	copy(k[:], b)
	return k
}

func block(t *testing.T, s string) uint64 {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 8 {
		t.Fatalf("bad block literal %q", s)
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func TestPresent80KnownAnswers(t *testing.T) {
	for _, kat := range present80KATs {
		c := NewCipher80(mustKey80(t, kat.key))
		pt, want := block(t, kat.pt), block(t, kat.ct)
		if got := c.EncryptBlock(pt); got != want {
			t.Errorf("key %s: Encrypt(%s) = %016x, want %s", kat.key, kat.pt, got, kat.ct)
		}
		if got := c.DecryptBlock(want); got != pt {
			t.Errorf("key %s: Decrypt(%s) = %016x, want %s", kat.key, kat.ct, got, kat.pt)
		}
	}
}

func TestPresent80ByteInterface(t *testing.T) {
	kat := present80KATs[0]
	c := NewCipher80(mustKey80(t, kat.key))
	src, _ := hex.DecodeString(kat.pt)
	dst := make([]byte, 8)
	c.Encrypt(dst, src)
	if hex.EncodeToString(dst) != kat.ct {
		t.Fatalf("Encrypt bytes = %x", dst)
	}
	back := make([]byte, 8)
	c.Decrypt(back, dst)
	if hex.EncodeToString(back) != kat.pt {
		t.Fatalf("Decrypt bytes = %x", back)
	}
}

func TestPresent80RoundTripQuick(t *testing.T) {
	f := func(kLo uint64, kHi uint16, pt uint64) bool {
		var key [10]byte
		key[0] = byte(kHi >> 8)
		key[1] = byte(kHi)
		for i := 0; i < 8; i++ {
			key[2+i] = byte(kLo >> (56 - 8*i))
		}
		c := NewCipher80(key)
		return c.DecryptBlock(c.EncryptBlock(pt)) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPresent128RoundTripQuick(t *testing.T) {
	f := func(a, b, pt uint64) bool {
		var key [16]byte
		for i := 0; i < 8; i++ {
			key[i] = byte(a >> (56 - 8*i))
			key[8+i] = byte(b >> (56 - 8*i))
		}
		c := NewCipher128(key)
		return c.DecryptBlock(c.EncryptBlock(pt)) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsInverse(t *testing.T) {
	f := func(s uint64) bool {
		return InvPermBits(PermBits(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermFixedPoints(t *testing.T) {
	// P(0)=0 and P(63)=63 are the only guaranteed fixed points.
	if Perm[0] != 0 || Perm[63] != 63 {
		t.Fatalf("Perm endpoints wrong: %d, %d", Perm[0], Perm[63])
	}
	if Perm[1] != 16 || Perm[16] != 4 {
		t.Fatalf("Perm samples wrong: P(1)=%d P(16)=%d", Perm[1], Perm[16])
	}
}

func TestSBoxIsPermutation(t *testing.T) {
	var seen [16]bool
	for _, v := range SBox {
		if seen[v] {
			t.Fatalf("S-box value %#x repeated", v)
		}
		seen[v] = true
	}
}

// TestSBoxBranchNumberThree verifies the design property the GRINCH
// paper cites (§II): PRESENT's S-box satisfies branching number 3, the
// requirement GIFT relaxed to BN2.
func TestSBoxBranchNumberThree(t *testing.T) {
	popcount := func(x uint8) int {
		n := 0
		for ; x != 0; x &= x - 1 {
			n++
		}
		return n
	}
	best := 8
	for a := uint8(1); a < 16; a++ {
		for d := uint8(1); d < 16; d++ {
			dout := SBox[a] ^ SBox[a^d]
			if dout == 0 {
				continue
			}
			if w := popcount(d) + popcount(dout); w < best {
				best = w
			}
		}
	}
	if best != 3 {
		t.Fatalf("PRESENT S-box branch number = %d, want 3", best)
	}
}

func TestRoundInverse(t *testing.T) {
	f := func(s, rk uint64) bool {
		return InvRound(Round(s, rk), rk) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSBoxInputsConsistent(t *testing.T) {
	c := NewCipher80(mustKey80(t, present80KATs[1].key))
	pt := uint64(0x0123456789abcdef)
	states := c.SBoxInputs(pt)
	if len(states) != Rounds {
		t.Fatalf("%d states, want %d", len(states), Rounds)
	}
	// Round 1's indices are pt ⊕ K1 — key-dependent from the start.
	if states[0] != pt^c.RoundKeys()[0] {
		t.Fatalf("round-1 index state %016x, want %016x", states[0], pt^c.RoundKeys()[0])
	}
	// Recomputing the ciphertext from the index states must agree.
	s := states[Rounds-1]
	if got := PermBits(SubCells(s)) ^ c.RoundKeys()[Rounds]; got != c.EncryptBlock(pt) {
		t.Fatalf("trace-reconstructed ciphertext mismatch")
	}
}

func TestPartialDecrypt(t *testing.T) {
	c := NewCipher80(mustKey80(t, present80KATs[0].key))
	rks := c.RoundKeys()
	pt := uint64(0xfeedfacecafebeef)
	s := pt
	for r := 0; r < 5; r++ {
		s = Round(s, rks[r])
	}
	if PartialDecrypt(s, rks, 5) != pt {
		t.Fatal("PartialDecrypt failed")
	}
}

func TestRecoverKey80FromRoundKeys(t *testing.T) {
	f := func(kLo uint64, kHi uint16) bool {
		var key [10]byte
		key[0] = byte(kHi >> 8)
		key[1] = byte(kHi)
		for i := 0; i < 8; i++ {
			key[2+i] = byte(kLo >> (56 - 8*i))
		}
		c := NewCipher80(key)
		rks := c.RoundKeys()
		return RecoverKey80(rks[0], rks[1]) == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvalanche80(t *testing.T) {
	c := NewCipher80(mustKey80(t, present80KATs[3].key))
	pt := uint64(0x0123456789abcdef)
	base := c.EncryptBlock(pt)
	total := 0
	for i := uint(0); i < 64; i++ {
		diff := base ^ c.EncryptBlock(pt^(1<<i))
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		total += n
	}
	if avg := float64(total) / 64; avg < 28 || avg > 36 {
		t.Fatalf("average avalanche %.2f bits", avg)
	}
}

func TestKeyScheduleDistinctRoundKeys(t *testing.T) {
	c := NewCipher80(mustKey80(t, "00000000000000000000"))
	seen := map[uint64]bool{}
	for _, rk := range c.RoundKeys() {
		if seen[rk] {
			t.Fatal("repeated round key — schedule degenerate")
		}
		seen[rk] = true
	}
}
