package analysis

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuantifyCapsAtIndexEntropy(t *testing.T) {
	// 8 entries × 8B span 64 one-byte lines, but an observation cannot
	// yield more than the index's own 3 bits.
	q := quantify(Geometry{Entries: 8, EntryBytes: 8, Source: "array"}, 1)
	if q.LinesObservable != 64 {
		t.Errorf("lines = %d, want 64", q.LinesObservable)
	}
	if q.BitsPerObservation != 3 {
		t.Errorf("bits = %v, want 3 (capped at log2(entries))", q.BitsPerObservation)
	}
	// The uncapped case: 16 one-byte entries at 1B lines.
	q = quantify(Geometry{Entries: 16, EntryBytes: 1, Source: "array"}, 1)
	if q.LinesObservable != 16 || q.BitsPerObservation != 4 {
		t.Errorf("16×1B: lines=%d bits=%v, want 16 and 4", q.LinesObservable, q.BitsPerObservation)
	}
}

func TestQuantifyLineSizeSweep(t *testing.T) {
	// The paper's Table I geometry sweep over the 16-byte S-box: wider
	// lines fold lookups together and shrink the per-observation yield.
	g := Geometry{Entries: 16, EntryBytes: 1, Source: "array"}
	want := map[int]float64{1: 4, 2: 3, 4: 2, 8: 1}
	for lineBytes, bits := range want {
		q := quantify(g, lineBytes)
		if math.Abs(q.BitsPerObservation-bits) > 1e-12 {
			t.Errorf("lineBytes=%d: bits = %v, want %v", lineBytes, q.BitsPerObservation, bits)
		}
	}
}

func TestQuantifySingleLineIsZeroBits(t *testing.T) {
	q := quantify(Geometry{Entries: 4, EntryBytes: 1, Source: "array"}, 8)
	if q.LinesObservable != 1 || q.BitsPerObservation != 0 {
		t.Errorf("a one-line table leaks nothing: lines=%d bits=%v", q.LinesObservable, q.BitsPerObservation)
	}
}

func TestQuantSuffixForms(t *testing.T) {
	var nilQ *Quant
	if nilQ.suffix() != "" {
		t.Errorf("nil quant must render empty, got %q", nilQ.suffix())
	}
	if s := quantForBranch().suffix(); !strings.Contains(s, "1.00 bits/evaluation") {
		t.Errorf("branch suffix = %q", s)
	}
	if s := (&Quant{LineBytes: 1, Source: "unresolved"}).suffix(); !strings.Contains(s, "grinch:geometry") {
		t.Errorf("unresolved suffix should point at the annotation, got %q", s)
	}
}

func TestBudgetsAggregation(t *testing.T) {
	q4 := &Quant{Entries: 16, EntryBytes: 1, LineBytes: 1, LinesObservable: 16, BitsPerObservation: 4, Source: "array", Resolved: true}
	q1 := &Quant{BitsPerObservation: 1, Source: "branch", Resolved: true}
	qu := &Quant{LineBytes: 1, Source: "unresolved"}
	findings := []Finding{
		{Rule: "secret-index", Pkg: "m/a", Func: "F", Quant: q4},
		{Rule: "secret-index", Pkg: "m/a", Func: "F", Quant: q4},
		{Rule: "secret-branch", Pkg: "m/a", Func: "G", Quant: q1},
		{Rule: "secret-index", Pkg: "m/b", Func: "H", Quant: qu},
		{Rule: "wallclock", Pkg: "m/c", Func: "I"}, // no quant: skipped
	}
	perFunc, perPkg := Budgets(findings)

	if len(perFunc) != 3 {
		t.Fatalf("perFunc rows = %d, want 3: %+v", len(perFunc), perFunc)
	}
	// Sorted by (pkg, func): a.F, a.G, b.H.
	if perFunc[0].Func != "F" || perFunc[0].Bits != 8 || perFunc[0].Findings != 2 {
		t.Errorf("a.F row wrong: %+v", perFunc[0])
	}
	if perFunc[1].Func != "G" || perFunc[1].Bits != 1 {
		t.Errorf("a.G row wrong: %+v", perFunc[1])
	}
	if perFunc[2].Func != "H" || perFunc[2].Bits != 0 || perFunc[2].Unresolved != 1 {
		t.Errorf("b.H row wrong: %+v", perFunc[2])
	}

	if len(perPkg) != 2 {
		t.Fatalf("perPkg rows = %d, want 2: %+v", len(perPkg), perPkg)
	}
	if perPkg[0].Pkg != "m/a" || perPkg[0].Bits != 9 || perPkg[0].Findings != 3 {
		t.Errorf("pkg a row wrong: %+v", perPkg[0])
	}
	if perPkg[1].Pkg != "m/b" || perPkg[1].Unresolved != 1 {
		t.Errorf("pkg b row wrong: %+v", perPkg[1])
	}
}

func TestBaselineV2RoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "grinchvet.baseline")
	f := fnd("secret-index", filepath.Join(root, "a.go"), "F", "sbox")
	f.Quant = &Quant{Entries: 16, EntryBytes: 1, LineBytes: 1, LinesObservable: 16, BitsPerObservation: 4, Source: "array", Resolved: true}
	b := fnd("secret-branch", filepath.Join(root, "b.go"), "G", "(expression)")
	b.Quant = quantForBranch()
	if err := WriteBaseline(path, root, []Finding{f, b}); err != nil {
		t.Fatal(err)
	}

	// The v2 column is written…
	rawBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw := string(rawBytes)
	if !strings.Contains(raw, "\tentries=16 bytes=1 lines=16 bits=4.00") {
		t.Fatalf("v2 quant column missing:\n%s", raw)
	}
	if !strings.Contains(raw, "\tbits=1.00") {
		t.Fatalf("branch quant column missing:\n%s", raw)
	}

	// …and dropped from the parsed identity, so a v2 file gates
	// exactly like a v1 file.
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base["secret-index\ta.go\tF\tsbox"] != 1 {
		t.Fatalf("v2 line did not parse down to the v1 key: %v", base)
	}
	fresh, stale := Diff([]Finding{f, b}, base, root)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("v2 round-trip not clean: fresh=%v stale=%v", fresh, stale)
	}
}

func TestBaselineV1StillParses(t *testing.T) {
	// A pre-quant baseline (3 tabs) and a quant one (4 tabs) coexist.
	base, err := parseBaseline(strings.NewReader(
		"secret-index\ta.go\tF\tsbox\n" +
			"secret-index\tb.go\tG\ttbl\tentries=16 bytes=1 lines=16 bits=4.00\n"))
	if err != nil {
		t.Fatal(err)
	}
	if base["secret-index\ta.go\tF\tsbox"] != 1 || base["secret-index\tb.go\tG\ttbl"] != 1 {
		t.Fatalf("mixed v1/v2 parse wrong: %v", base)
	}
}

func TestDiffFreshIsSorted(t *testing.T) {
	root := t.TempDir()
	findings := []Finding{
		fnd("wallclock", filepath.Join(root, "z.go"), "Z", "time.Now"),
		fnd("secret-index", filepath.Join(root, "b.go"), "B", "t2"),
		fnd("secret-index", filepath.Join(root, "a.go"), "B", "t1"),
		fnd("secret-branch", filepath.Join(root, "a.go"), "A", "c"),
	}
	// Pkg deliberately varies to exercise the (rule, pkg, func) order.
	findings[1].Pkg = "m/b"
	findings[2].Pkg = "m/a"
	fresh, _ := Diff(findings, nil, root)
	var got []string
	for _, f := range fresh {
		got = append(got, f.Rule+"/"+f.Pkg+"/"+f.Func)
	}
	want := []string{"secret-branch//A", "secret-index/m/a/B", "secret-index/m/b/B", "wallclock//Z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fresh order = %v, want %v", got, want)
		}
	}
}
