// Package analysis is grinchvet's analyzer framework: a small,
// stdlib-only (go/parser + go/ast + go/types) multi-pass static checker
// that turns two properties of this repository into machine-enforced
// invariants:
//
//   - Leakage. The GRINCH attack exists because table-based GIFT
//     performs secret-dependent memory accesses. The repo deliberately
//     carries both the leaky table implementation and the bitsliced
//     constant-time one; the leakage pass (secret-index, secret-branch)
//     proves statically which is which, by tainting values annotated
//     //grinch:secret and flagging array/slice indexing and branching
//     on tainted data.
//
//   - Determinism. The campaign orchestrator promises byte-identical
//     output for any worker count. The determinism pass (wallclock,
//     mathrand, maporder) forbids wall-clock reads, stdlib RNGs and
//     map-iteration ordering inside the deterministic core, so the
//     promise cannot rot silently.
//
// Findings carry file:line positions, a severity, and a stable key used
// by the committed baseline (grinchvet.baseline): known, accepted
// findings — the leaky implementations the attack needs — are recorded
// there, and anything new fails the build. Individual sites can be
// waived with a //grinchvet:ignore <rule> comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Severity ranks findings. Both severities gate the build when not in
// the baseline; the distinction is informational.
type Severity string

// Severity levels.
const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Finding is one rule violation at one source position.
type Finding struct {
	// Rule is the analyzer rule name (e.g. "secret-index").
	Rule string `json:"rule"`
	// Severity is error or warning.
	Severity Severity `json:"severity"`
	// Pkg is the import path of the offending package.
	Pkg string `json:"pkg"`
	// File is the path as the loader saw it; Line/Col are 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Func is the enclosing function ("" at package scope). Part of the
	// baseline key, so findings survive unrelated line drift.
	Func string `json:"func,omitempty"`
	// Detail is a short stable description of the offending expression
	// (e.g. the indexed table name). Part of the baseline key.
	Detail string `json:"detail,omitempty"`
	// Message is the full human-readable diagnostic.
	Message string `json:"message"`
	// Quant is the quantitative leakage estimate, attached to leakage
	// findings when Config.Quant is set (see quant.go).
	Quant *Quant `json:"quant,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Pass hands one type-checked package to an analyzer. Analyzers call
// Report for every violation; suppression and baseline filtering happen
// in the driver, not in the analyzers.
type Pass struct {
	World  *World
	Pkg    *Package
	Config Config

	findings *[]Finding
}

// Report records a finding at the given node. fn is the enclosing
// function name ("" for package scope), detail the stable short form.
// The returned pointer lets the caller attach optional fields (Quant);
// it is invalidated by the next Report call, so use it immediately.
func (p *Pass) Report(rule string, sev Severity, node ast.Node, fn, detail, message string) *Finding {
	pos := p.Pkg.Fset.Position(node.Pos())
	*p.findings = append(*p.findings, Finding{
		Rule:     rule,
		Severity: sev,
		Pkg:      p.Pkg.Path,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Func:     fn,
		Detail:   detail,
		Message:  message,
	})
	return &(*p.findings)[len(*p.findings)-1]
}

// Analyzer is one registered pass.
type Analyzer struct {
	// Name is the rule-family name shown in -rules listings.
	Name string
	// Doc is a one-line description.
	Doc string
	// Rules lists the rule names this analyzer can emit (for ignore
	// validation and documentation).
	Rules []string
	// Run analyzes one package.
	Run func(*Pass)
}

// Registry returns the built-in analyzers in execution order.
func Registry() []*Analyzer {
	return []*Analyzer{
		LeakageAnalyzer(),
		DeterminismAnalyzer(),
	}
}

// Config steers an analysis run.
type Config struct {
	// DeterministicPkgs are import-path prefixes (after the module
	// path, e.g. "internal/sim") whose packages must obey the
	// determinism rules. An entry matches the package itself and any
	// package below it.
	DeterministicPkgs []string
	// Rules restricts emission to the named rules; empty means all.
	Rules []string
	// Quant enables the quantitative leakage model: leakage findings
	// carry bits-per-observation estimates (see quant.go).
	Quant bool
	// QuantLineBytes is the modeled cache-line size in bytes for the
	// quant model; 0 means DefaultQuantLineBytes.
	QuantLineBytes int
}

// DefaultDeterministicPkgs lists the package trees (module-relative)
// bound by the determinism rules in this repository: the simulation
// stack whose virtual time must not observe real time, and the
// campaign/experiment pipeline whose serialized output must be
// byte-identical across worker counts. The cmd/ drivers are included so
// a wall-clock read that leaks into output needs an explicit,
// reviewable //grinchvet:ignore waiver.
func DefaultDeterministicPkgs() []string {
	return []string{
		"internal/sim",
		"internal/cache",
		"internal/soc",
		"internal/noc",
		"internal/rtos",
		// The batched attack pipeline (DESIGN.md §15) promises scalar/
		// batch byte-identity, which makes the whole crafting-to-
		// elimination stack a determinism surface, not just the
		// campaign layer above it.
		"internal/core",
		"internal/gift",
		"internal/bitutil",
		"internal/probe",
		"internal/rng",
		"internal/oracle",
		"internal/faults",
		"internal/campaign",
		"internal/campaignd",
		// Covered by the internal/campaignd tree entry above, but listed
		// explicitly: replayable fault schedules are the chaos package's
		// whole contract (DESIGN.md §16) — injection decisions derive
		// from seeds and request ordinals, never from the clock.
		"internal/campaignd/chaos",
		"internal/experiments",
		"internal/obs",
		// Covered by the internal/obs tree entry above, but listed
		// explicitly: deterministic snapshots are a documented contract
		// of the metrics registry (DESIGN.md §14), not an accident of
		// its location.
		"internal/obs/metrics",
		"internal/analysis/quantcheck",
		"cmd/campaign",
		"cmd/campaignd",
		"cmd/campaignw",
		"cmd/experiments",
		"cmd/grinch",
		"cmd/traceview",
	}
}

// deterministic reports whether pkgPath (a full import path) falls in
// the configured deterministic core.
func (c Config) deterministic(modulePath, pkgPath string) bool {
	rel := pkgPath
	if modulePath != "" && len(pkgPath) > len(modulePath) && pkgPath[:len(modulePath)] == modulePath && pkgPath[len(modulePath)] == '/' {
		rel = pkgPath[len(modulePath)+1:]
	}
	for _, p := range c.DeterministicPkgs {
		if rel == p || (len(rel) > len(p) && rel[:len(p)] == p && rel[len(p)] == '/') {
			return true
		}
	}
	return false
}

// ruleEnabled reports whether the config selects the rule.
func (c Config) ruleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// Analyze runs every registered analyzer over the given packages and
// returns the surviving findings: suppressed sites (//grinchvet:ignore)
// are dropped, rule filtering applied, and the result sorted by
// file, line, column, rule.
func Analyze(world *World, pkgs []*Package, cfg Config) []Finding {
	var raw []Finding
	for _, pkg := range pkgs {
		pass := &Pass{World: world, Pkg: pkg, Config: cfg, findings: &raw}
		for _, a := range Registry() {
			a.Run(pass)
		}
	}
	out := make([]Finding, 0, len(raw))
	for _, f := range raw {
		if !cfg.ruleEnabled(f.Rule) {
			continue
		}
		if world.suppressed(f) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

// enclosingFuncName renders a FuncDecl's name with its receiver type,
// e.g. "Cipher64.EncryptTraced" — the form used in baseline keys.
func enclosingFuncName(fd *ast.FuncDecl) string {
	if fd == nil {
		return ""
	}
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := receiverTypeName(fd.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return name
}

func receiverTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	}
	return ""
}

// exprString renders a compact, stable form of an expression for
// finding details: identifiers and selector chains come out verbatim,
// anything more complex is elided.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		base := exprString(t.X)
		if base == "" {
			return t.Sel.Name
		}
		return base + "." + t.Sel.Name
	case *ast.ParenExpr:
		return exprString(t.X)
	case *ast.StarExpr:
		return exprString(t.X)
	case *ast.IndexExpr:
		return exprString(t.X) + "[...]"
	case *ast.CallExpr:
		return exprString(t.Fun) + "(...)"
	}
	return ""
}

var _ = token.NoPos
