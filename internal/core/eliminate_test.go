package core

import (
	"testing"

	"grinch/internal/probe"
)

func TestEliminatorStrictIntersection(t *testing.T) {
	e := NewEliminator(16, 1)
	e.Observe(probe.LineSet(0b0000_1111))
	e.Observe(probe.LineSet(0b0011_0101))
	if got := e.Candidates(); got != probe.LineSet(0b0000_0101) {
		t.Fatalf("candidates = %v", got)
	}
	e.Observe(probe.LineSet(0b0000_0100))
	line, ok := e.Converged(1)
	if !ok || line != 2 {
		t.Fatalf("Converged = (%d,%v), want (2,true)", line, ok)
	}
}

func TestEliminatorBeforeObservations(t *testing.T) {
	e := NewEliminator(8, 1)
	if got := e.Candidates(); got != probe.FullSet(8) {
		t.Fatalf("initial candidates = %v", got)
	}
	if _, ok := e.Converged(0); ok {
		t.Fatal("converged with no observations")
	}
	if e.Exhausted() {
		t.Fatal("exhausted with no observations")
	}
}

func TestEliminatorExhaustion(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0011))
	e.Observe(probe.LineSet(0b1100))
	if !e.Exhausted() {
		t.Fatal("disjoint observations should exhaust")
	}
	if _, ok := e.Converged(1); ok {
		t.Fatal("exhausted eliminator converged")
	}
}

func TestEliminatorMinObservationsGate(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0001))
	if _, ok := e.Converged(2); ok {
		t.Fatal("converged before MinObservations")
	}
	e.Observe(probe.LineSet(0b0001))
	if line, ok := e.Converged(2); !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v)", line, ok)
	}
}

func TestEliminatorThresholdToleratesAbsence(t *testing.T) {
	e := NewEliminator(4, 0.7)
	// Line 1 present in 4/5 observations (ratio 0.8 ≥ 0.7); line 2
	// present in 2/5 (0.4 < 0.7).
	sets := []probe.LineSet{0b0010, 0b0110, 0b0010, 0b0100, 0b0010}
	for _, s := range sets {
		e.Observe(s)
	}
	if got := e.Candidates(); got != probe.LineSet(0b0010) {
		t.Fatalf("candidates = %v", got)
	}
}

// TestEliminatorAdversarialExhaustThenRestart models the recovery the
// attack core performs under destructive noise: a false absence on the
// true line exhausts a strict eliminator permanently, and a fresh
// eliminator with a relaxed threshold converges on the same stream.
func TestEliminatorAdversarialExhaustThenRestart(t *testing.T) {
	// True line is 3; observation 2 misses it (false absence) and every
	// other line dies across the stream.
	stream := []probe.LineSet{
		0b1111_1000, 0b0011_0110, 0b0000_1100, 0b0110_1000,
		0b0000_1010, 0b0100_1100, 0b0000_1001, 0b0010_1000,
	}

	strict := NewEliminator(8, 1)
	for _, s := range stream {
		strict.Observe(s)
	}
	if !strict.Exhausted() {
		t.Fatal("strict eliminator should exhaust: the true line has a false absence")
	}

	// The restart path re-runs with a relaxed threshold over fresh
	// observations of the same distribution. One relaxation (0.9) is
	// still above the true line's 7/8 ratio; the second restart's 0.81
	// tolerates the loss.
	relaxed := NewEliminator(8, relaxThreshold(relaxThreshold(1, 0.9), 0.9))
	for i := 0; i < 6; i++ {
		for _, s := range stream {
			relaxed.Observe(s)
		}
	}
	line, ok := relaxed.Converged(relaxedMinObservations)
	if !ok || line != 3 {
		t.Fatalf("relaxed Converged = (%d,%v), want (3,true)", line, ok)
	}
}

// TestEliminatorBurstyFalseAbsences pins threshold semantics under
// correlated (bursty) loss: the true line vanishes for a contiguous
// burst but keeps a ratio above the threshold over the full window,
// while an intermittent noise line stays below it.
func TestEliminatorBurstyFalseAbsences(t *testing.T) {
	e := NewEliminator(4, 0.75)
	true3, noise1 := probe.LineSet(0b1000), probe.LineSet(0b0010)
	for i := 0; i < 40; i++ {
		s := true3
		if i >= 10 && i < 14 {
			s = 0 // 4-observation burst: the true line disappears
		}
		if i%3 == 0 {
			s |= noise1
		}
		e.Observe(s)
	}
	// True line: 36/40 = 0.9 ≥ 0.75. Noise line: 14/40 = 0.35 < 0.75.
	line, ok := e.Converged(8)
	if !ok || line != 3 {
		t.Fatalf("Converged = (%d,%v), want (3,true)", line, ok)
	}
	// A longer burst pushes the true line below the threshold and the
	// eliminator must report exhaustion, not a fake survivor.
	e2 := NewEliminator(4, 0.75)
	for i := 0; i < 40; i++ {
		s := true3
		if i >= 10 && i < 24 {
			s = 0 // 14/40 lost: ratio 0.65 < 0.75
		}
		e2.Observe(s)
	}
	if !e2.Exhausted() {
		t.Fatalf("candidates %v, want exhaustion under a 35%% loss burst", e2.Candidates())
	}
}

// TestEliminatorMinObservationsGuardsSparseLines covers the per-line
// examination floor: under a partial mask a line seen only once must
// not be declared converged until it has minObs examinations behind it.
func TestEliminatorMinObservationsGuardsSparseLines(t *testing.T) {
	e := NewEliminator(4, 1)
	// Lines 1..3 examined and absent (eliminated); line 0 examined just
	// once and present.
	e.ObserveMasked(0b0001, 0b1111)
	e.ObserveMasked(0b0000, 0b1110)
	e.ObserveMasked(0b0000, 0b1110)
	if _, ok := e.Converged(3); ok {
		t.Fatal("line 0 declared converged on a single examination")
	}
	e.ObserveMasked(0b0001, 0b0001)
	e.ObserveMasked(0b0001, 0b0001)
	line, ok := e.Converged(3)
	if !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v), want (0,true)", line, ok)
	}
}

func TestEliminatorIgnoresOutOfRangeLines(t *testing.T) {
	e := NewEliminator(2, 1)
	e.Observe(probe.LineSet(0b1111)) // lines 2,3 beyond range
	e.Observe(probe.LineSet(0b0001))
	if line, ok := e.Converged(1); !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v)", line, ok)
	}
}

func TestEliminatorPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEliminator(0, 1) },
		func() { NewEliminator(65, 1) },
		func() { NewEliminator(4, 0) },
		func() { NewEliminator(4, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWorstPinShare(t *testing.T) {
	// The GIFT S-box is balanced; a wrong hypothesis can leave at most
	// 6/8 of the crafted inputs pinned (and at least something below 1,
	// or hypothesis testing would be impossible).
	if worstPinShare >= 1 || worstPinShare < 0.5 {
		t.Fatalf("worstPinShare = %v, expected in [0.5, 1)", worstPinShare)
	}
}

// naiveEliminator is the pre-lane reference implementation: exact
// per-line count loops, no deferred bookkeeping. The lane differential
// tests below hold the real Eliminator to this semantics bit for bit.
type naiveEliminator struct {
	lines     int
	threshold float64
	counts    [64]uint64
	probed    [64]uint64
	n         uint64
}

func (e *naiveEliminator) observe(set, mask probe.LineSet) {
	e.n++
	for _, l := range mask.Lines() {
		if l >= e.lines {
			continue
		}
		e.probed[l]++
		if set.Contains(l) {
			e.counts[l]++
		}
	}
}

func (e *naiveEliminator) candidates() probe.LineSet {
	if e.n == 0 {
		return probe.FullSet(e.lines)
	}
	var set probe.LineSet
	for l := 0; l < e.lines; l++ {
		if e.probed[l] == 0 {
			set = set.Add(l)
			continue
		}
		if e.threshold == 1 {
			if e.counts[l] == e.probed[l] {
				set = set.Add(l)
			}
			continue
		}
		req := uint64(e.threshold * float64(e.probed[l]))
		if req < 1 {
			req = 1
		}
		if e.counts[l] >= req {
			set = set.Add(l)
		}
	}
	return set
}

func (e *naiveEliminator) ratio(l int) float64 {
	if l < 0 || l >= e.lines || e.probed[l] == 0 {
		return 0
	}
	return float64(e.counts[l]) / float64(e.probed[l])
}

// elimStream produces a deterministic pseudo-random observation stream
// biased to keep line 0 always present (the pinned target).
func elimStream(seed uint64, n, lines int) []probe.LineSet {
	out := make([]probe.LineSet, n)
	x := seed | 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = (probe.LineSet(x) | 1) & probe.FullSet(lines)
	}
	return out
}

// TestEliminatorLanesMatchNaive is the lane-mode differential: across
// line counts and stream lengths spanning several fold boundaries, the
// lane-accelerated strict eliminator must agree with the naive per-line
// reference on every query after every observation.
func TestEliminatorLanesMatchNaive(t *testing.T) {
	for _, lines := range []int{1, 2, 4, 8, 16, 64} {
		for _, n := range []int{1, 63, 64, 65, 130, 200} {
			e := NewEliminator(lines, 1)
			ref := &naiveEliminator{lines: lines, threshold: 1}
			for i, s := range elimStream(uint64(lines*1000+n), n, lines) {
				e.Observe(s)
				ref.observe(s, probe.FullSet(lines))
				if got, want := e.Candidates(), ref.candidates(); got != want {
					t.Fatalf("lines=%d n=%d obs %d: Candidates %v, naive %v", lines, n, i, got, want)
				}
				if got, want := e.Exhausted(), ref.candidates().Count() == 0; got != want {
					t.Fatalf("lines=%d n=%d obs %d: Exhausted %v, naive %v", lines, n, i, got, want)
				}
			}
			// Ratio queries force a fold mid-lane-mode; counts must be
			// exact and further observations must keep working.
			for l := -1; l <= lines; l++ {
				if got, want := e.PresenceRatio(l), ref.ratio(l); got != want {
					t.Fatalf("lines=%d n=%d: PresenceRatio(%d) = %v, naive %v", lines, n, l, got, want)
				}
			}
			extra := elimStream(uint64(n)+7, 70, lines)
			for _, s := range extra {
				e.Observe(s)
				ref.observe(s, probe.FullSet(lines))
			}
			if got, want := e.Candidates(), ref.candidates(); got != want {
				t.Fatalf("lines=%d n=%d post-fold: Candidates %v, naive %v", lines, n, got, want)
			}
		}
	}
}

// TestEliminatorLanesLeaveOnPartialMask proves the lane → scalar
// downgrade is seamless: a partially-masked observation arriving after
// an arbitrary number of lane observations must leave the statistics
// exactly as if every observation had been counted scalar all along.
func TestEliminatorLanesLeaveOnPartialMask(t *testing.T) {
	const lines = 8
	for _, pre := range []int{0, 3, 64, 100} {
		e := NewEliminator(lines, 1)
		ref := &naiveEliminator{lines: lines, threshold: 1}
		for _, s := range elimStream(uint64(pre)+1, pre, lines) {
			e.Observe(s)
			ref.observe(s, probe.FullSet(lines))
		}
		// Evict+Time style single-line masks, cycling.
		for i := 0; i < 3*lines; i++ {
			mask := probe.LineSet(0).Add(i % lines)
			set := probe.LineSet(0)
			if i%4 != 3 {
				set = mask
			}
			e.ObserveMasked(set, mask)
			ref.observe(set, mask)
		}
		if got, want := e.Candidates(), ref.candidates(); got != want {
			t.Fatalf("pre=%d: Candidates %v, naive %v", pre, got, want)
		}
		for l := 0; l < lines; l++ {
			if got, want := e.PresenceRatio(l), ref.ratio(l); got != want {
				t.Fatalf("pre=%d: PresenceRatio(%d) = %v, naive %v", pre, l, got, want)
			}
		}
		if e.Observations() != ref.n {
			t.Fatalf("pre=%d: n = %d, naive %d", pre, e.Observations(), ref.n)
		}
	}
}

// TestObserveBatchMatchesSequential pins ObserveBatch as pure sugar for
// a sequence of full-mask Observe calls.
func TestObserveBatchMatchesSequential(t *testing.T) {
	stream := elimStream(77, 130, 16)
	one := NewEliminator(16, 1)
	bulk := NewEliminator(16, 1)
	for _, s := range stream {
		one.Observe(s)
	}
	bulk.ObserveBatch(stream)
	if one.Candidates() != bulk.Candidates() || one.Observations() != bulk.Observations() {
		t.Fatalf("ObserveBatch diverged: %v/%d vs %v/%d",
			bulk.Candidates(), bulk.Observations(), one.Candidates(), one.Observations())
	}
	for l := 0; l < 16; l++ {
		if one.PresenceRatio(l) != bulk.PresenceRatio(l) {
			t.Fatalf("PresenceRatio(%d) diverged", l)
		}
	}
}

// TestObserveMaskedZeroAllocs is the satellite-1 regression test: the
// hottest per-encryption call must not allocate, in lane mode, in the
// scalar fallback, nor across fold boundaries.
func TestObserveMaskedZeroAllocs(t *testing.T) {
	lane := NewEliminator(16, 1)
	full := probe.FullSet(16)
	if avg := testing.AllocsPerRun(1000, func() {
		lane.ObserveMasked(0b1011, full)
	}); avg != 0 {
		t.Fatalf("lane-mode ObserveMasked allocates %v per observation", avg)
	}

	scalar := NewEliminator(16, 0.9)
	mask := probe.LineSet(0b0101)
	if avg := testing.AllocsPerRun(1000, func() {
		scalar.ObserveMasked(0b0001, mask)
	}); avg != 0 {
		t.Fatalf("scalar ObserveMasked allocates %v per observation", avg)
	}
}

// TestEliminatorBoundsEdges is the satellite-2 regression test: both
// query methods must treat a negative index exactly like an index past
// the table — return the zero value, never panic.
func TestEliminatorBoundsEdges(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0001))
	for _, l := range []int{-1, -64, 4, 63} {
		if r := e.PresenceRatio(l); r != 0 {
			t.Fatalf("PresenceRatio(%d) = %v, want 0", l, r)
		}
		if e.Recovered(l) {
			t.Fatalf("Recovered(%d) = true, want false", l)
		}
	}
	// In-range behaviour: line 0 is the sole survivor.
	if !e.Recovered(0) {
		t.Fatal("Recovered(0) = false for the sole survivor")
	}
	if e.Recovered(1) {
		t.Fatal("Recovered(1) = true for an eliminated line")
	}
	if r := e.PresenceRatio(0); r != 1 {
		t.Fatalf("PresenceRatio(0) = %v, want 1", r)
	}
	// No observations yet: nothing is recovered, even in range.
	if NewEliminator(4, 1).Recovered(0) {
		t.Fatal("Recovered(0) = true before any observation")
	}
}

// TestEliminatorResetReuses pins Reset as a full reinitialisation so
// the attack loops can keep one value per target.
func TestEliminatorResetReuses(t *testing.T) {
	e := NewEliminator(8, 1)
	for _, s := range elimStream(5, 100, 8) {
		e.Observe(s)
	}
	e.ObserveMasked(0b1, 0b1) // force scalar mode
	e.Reset(4, 0.8)
	if e.Observations() != 0 || e.Candidates() != probe.FullSet(4) {
		t.Fatalf("Reset left state: n=%d candidates=%v", e.Observations(), e.Candidates())
	}
	e.Observe(0b0010)
	if got := e.Candidates(); got != probe.LineSet(0b0010) {
		t.Fatalf("post-Reset candidates = %v", got)
	}
}
