// Command campaignw is a distributed campaign worker: it pulls shard
// leases from a campaignd coordinator, executes the shard's attack
// jobs on a local worker pool, and streams result batches back, until
// stopped or (with -drain) until the coordinator reports every
// campaign merged.
//
// Usage:
//
//	campaignw -server http://127.0.0.1:8844            # keep pulling forever
//	campaignw -server http://host:8844 -id rack3 -drain
//	campaignw -server http://host:8844 -workers 8 -batch 32
//
// Determinism: a worker adds no entropy. Job seeds derive from the
// campaign seed and job index, the job grid is re-expanded locally
// from the spec in each lease, and results are reported in canonical
// (timing-free) form — so any fleet of campaignw processes produces
// the same merged bytes as a single cmd/campaign run.
//
// Crash behaviour: a killed worker simply stops heartbeating; its
// lease expires on the coordinator and the shard re-issues with the
// already-reported results intact. Restarting the worker (same or
// different -id) resumes from the remainder.
//
// Chaos drills: -chaos installs a deterministic fault-injecting
// transport between this worker and the coordinator (DESIGN.md §16),
// e.g.
//
//	campaignw -server http://host:8844 -drain \
//	  -chaos 'drop-response:path=/api/v1/results:p=0.1,delay:ms=20:p=0.3' \
//	  -chaos-seed 7
//
// The merged output must still be byte-identical to a fault-free run —
// scripts/ci_chaos.sh drills exactly that.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"grinch/internal/campaignd/chaos"
	"grinch/internal/campaignd/worker"
	"grinch/internal/experiments"
)

func main() {
	var (
		server  = flag.String("server", "http://127.0.0.1:8844", "campaignd coordinator base URL")
		id      = flag.String("id", "", "worker identity (default host:pid)")
		workers = flag.Int("workers", 0, "local pool size (0 = GOMAXPROCS)")
		batch   = flag.Int("batch", worker.DefaultBatch, "results per report batch")
		poll    = flag.Duration("poll", worker.DefaultPoll, "idle sleep between lease attempts")
		drain   = flag.Bool("drain", false, "exit once the coordinator reports all campaigns merged")
		quiet   = flag.Bool("quiet", false, "suppress operator logs on stderr")

		chaosSpec = flag.String("chaos", "", "fault-injection plan, e.g. 'drop-response:path=/api/v1/results:p=0.1,delay:ms=20' (kinds: "+strings.Join(chaos.Kinds(), ", ")+")")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the fault-injection plan's deterministic decisions")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatalf("unexpected arguments %v", flag.Args())
	}

	wid := *id
	if wid == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		wid = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "campaignw: "+format+"\n", args...)
		}
	}

	var transport *chaos.Transport
	if *chaosSpec != "" {
		plan, err := chaos.ParsePlan(*chaosSpec, *chaosSeed)
		if err != nil {
			fatalf("-chaos: %v", err)
		}
		transport = chaos.NewTransport(plan, nil)
		transport.Logf = logf
		logf("chaos plan armed (seed %d): %s", *chaosSeed, plan)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := worker.Config{
		Server:  *server,
		ID:      wid,
		Exec:    experiments.Execute,
		Workers: *workers,
		Batch:   *batch,
		Poll:    *poll,
		Drain:   *drain,
		Logf:    logf,
	}
	if transport != nil {
		cfg.Transport = transport
	}
	err := worker.Run(ctx, cfg)
	if transport != nil {
		logf("chaos injections: %s", transport.Summary())
	}
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		logf("interrupted; lease (if any) will expire and re-issue in the coordinator")
		os.Exit(130)
	default:
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaignw: "+format+"\n", args...)
	os.Exit(1)
}
