package core

import "grinch/internal/probe"

// Eliminator implements paper Step 3 (Eliminate Candidates): the pinned
// target index is present in every observation, so candidate lines are
// those that appear in (almost) all observations and the survivors
// shrink toward the target as noise lines drop out.
//
// With Threshold == 1 this is the paper's strict set intersection. A
// threshold below 1 tolerates false absences (the target line evicted
// between access and probe): a line stays candidate while its appearance
// ratio is at least the threshold.
type Eliminator struct {
	lines     int
	threshold float64
	counts    []uint64
	probed    []uint64 // how many observations actually examined each line
	n         uint64
}

// NewEliminator creates an eliminator over the given number of table
// lines. threshold must be in (0, 1]; 1 means strict intersection.
func NewEliminator(lines int, threshold float64) *Eliminator {
	if lines < 1 || lines > 64 {
		panic("core: eliminator needs 1..64 lines")
	}
	if threshold <= 0 || threshold > 1 {
		panic("core: threshold must be in (0,1]")
	}
	return &Eliminator{
		lines:     lines,
		threshold: threshold,
		counts:    make([]uint64, lines),
		probed:    make([]uint64, lines),
	}
}

// Observe folds one fully-probed line set into the statistics.
func (e *Eliminator) Observe(set probe.LineSet) {
	e.ObserveMasked(set, probe.FullSet(e.lines))
}

// ObserveMasked folds a partially-probed observation in: only the lines
// in mask were examined this encryption (an Evict+Time attacker tests a
// single line per run; Flush+Reload examines them all). Lines outside
// the mask are neither credited nor debited.
func (e *Eliminator) ObserveMasked(set, mask probe.LineSet) {
	e.n++
	for _, l := range mask.Lines() {
		if l >= e.lines {
			continue
		}
		e.probed[l]++
		if set.Contains(l) {
			e.counts[l]++
		}
	}
}

// Observations returns how many observations have been folded in.
func (e *Eliminator) Observations() uint64 { return e.n }

// qualifies reports whether line l still meets the threshold.
func (e *Eliminator) qualifies(l int) bool {
	if e.probed[l] == 0 {
		return true // never examined: cannot be ruled out
	}
	if e.threshold == 1 {
		return e.counts[l] == e.probed[l]
	}
	req := uint64(e.threshold * float64(e.probed[l]))
	if req < 1 {
		req = 1
	}
	return e.counts[l] >= req
}

// Candidates returns the lines that still qualify.
func (e *Eliminator) Candidates() probe.LineSet {
	if e.n == 0 {
		return probe.FullSet(e.lines)
	}
	var set probe.LineSet
	for l := 0; l < e.lines; l++ {
		if e.qualifies(l) {
			set = set.Add(l)
		}
	}
	return set
}

// Converged reports the surviving line once exactly one candidate
// remains, every line has been examined, and the survivor has at least
// minObs examinations behind it.
func (e *Eliminator) Converged(minObs uint64) (line int, ok bool) {
	if e.n < minObs {
		return -1, false
	}
	c := e.Candidates()
	if c.Count() != 1 {
		return -1, false
	}
	sole := c.Sole()
	if e.probed[sole] < minObs {
		return -1, false
	}
	return sole, true
}

// Exhausted reports that no candidate survives — the signature of a
// wrong crafting hypothesis (the "pinned" index was not actually pinned)
// or of destructive noise.
func (e *Eliminator) Exhausted() bool {
	return e.n > 0 && e.Candidates().Count() == 0
}

// PresenceRatio returns line l's appearance ratio over the observations
// that examined it (0 when never examined).
func (e *Eliminator) PresenceRatio(l int) float64 {
	if l >= e.lines || e.probed[l] == 0 {
		return 0
	}
	return float64(e.counts[l]) / float64(e.probed[l])
}
