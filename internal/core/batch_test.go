package core

import (
	"bytes"
	"reflect"
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/obs"
	"grinch/internal/obs/metrics"
	"grinch/internal/oracle"
)

// attackRun captures every observable output of one attack execution:
// the recovered key, the graceful partial result, the full trace event
// stream, the Prometheus metrics exposition, and the channel's
// encryption counter. The batch differential requires all of them to
// be identical between BatchAuto and BatchOff.
type attackRun struct {
	res     KeyResult
	partial *PartialResult
	events  []obs.Event
	prom    []byte
	encs    uint64
	err     error
}

func runWithMode(t *testing.T, mode BatchMode, ocfg oracle.Config, acfg Config, graceful bool) attackRun {
	t.Helper()
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	ch, err := oracle.New(key, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf obs.Buffer
	reg := metrics.New()
	acfg.Batch = mode
	acfg.Tracer = &buf
	acfg.Metrics = reg
	a, err := NewAttacker(ch, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if mode == BatchAuto && a.batchCh == nil {
		t.Fatal("BatchAuto attacker did not engage the batch pipeline on a batch-capable oracle")
	}
	if mode == BatchOff && a.batchCh != nil {
		t.Fatal("BatchOff attacker kept a batch channel")
	}

	var run attackRun
	if graceful {
		run.res, run.partial = a.RecoverKeyGraceful()
	} else {
		run.res, run.err = a.RecoverKey()
	}
	run.events = buf.Events
	run.encs = ch.Encryptions()
	var prom bytes.Buffer
	if err := metrics.WriteProm(&prom, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	run.prom = prom.Bytes()
	return run
}

func diffRuns(t *testing.T, name string, batch, scalar attackRun) {
	t.Helper()
	if batch.res != scalar.res {
		t.Errorf("%s: KeyResult diverged:\n batch  %+v\n scalar %+v", name, batch.res, scalar.res)
	}
	if (batch.err == nil) != (scalar.err == nil) ||
		(batch.err != nil && batch.err.Error() != scalar.err.Error()) {
		t.Errorf("%s: error diverged: batch %v, scalar %v", name, batch.err, scalar.err)
	}
	if !reflect.DeepEqual(batch.partial, scalar.partial) {
		t.Errorf("%s: PartialResult diverged:\n batch  %+v\n scalar %+v", name, batch.partial, scalar.partial)
	}
	if batch.encs != scalar.encs {
		t.Errorf("%s: encryptions diverged: batch %d, scalar %d", name, batch.encs, scalar.encs)
	}
	if len(batch.events) != len(scalar.events) {
		t.Errorf("%s: event counts diverged: batch %d, scalar %d", name, len(batch.events), len(scalar.events))
	} else {
		for i := range batch.events {
			if batch.events[i] != scalar.events[i] {
				t.Errorf("%s: event %d diverged:\n batch  %+v\n scalar %+v", name, i, batch.events[i], scalar.events[i])
				break
			}
		}
	}
	if !bytes.Equal(batch.prom, scalar.prom) {
		t.Errorf("%s: metrics exposition diverged", name)
	}
}

// TestBatchScalarDifferentialClean runs the full key recovery over the
// clean-channel geometry grid in both modes and requires byte-identical
// results, traces, metrics and channel usage. Wide lines exercise the
// hypothesis-confirmation path; ProbeRound 3 exercises multi-round
// probe windows; no-flush exercises stale-access accumulation.
func TestBatchScalarDifferentialClean(t *testing.T) {
	for _, lw := range []int{1, 2, 4, 8} {
		for _, pr := range []int{1, 3} {
			for _, flush := range []bool{true, false} {
				if lw == 8 && (pr > 1 || !flush) {
					// A saturated 2-line channel burns the whole budget
					// without adding coverage beyond lw=8/pr=1/flush.
					continue
				}
				// Clean easy cells recover the key outright in well
				// under the budget; saturated cells (wide lines, long
				// probe windows) are capped so the grid also compares
				// mid-attack abort behaviour without burning minutes.
				budget := uint64(600_000)
				if lw >= 4 || pr > 1 || !flush {
					budget = 100_000
				}
				ocfg := oracle.Config{ProbeRound: pr, Flush: flush, LineWords: lw, Seed: 11}
				acfg := Config{Seed: 2021, TotalBudget: budget}
				name := "clean"
				batch := runWithMode(t, BatchAuto, ocfg, acfg, true)
				scalar := runWithMode(t, BatchOff, ocfg, acfg, true)
				diffRuns(t, name, batch, scalar)
			}
		}
	}
}

// TestBatchScalarDifferentialNoise covers the noisy configurations: a
// relaxed threshold, quarantine, restarts, and noise draws whose rng
// stream order is part of the byte-identity contract.
func TestBatchScalarDifferentialNoise(t *testing.T) {
	for _, lw := range []int{1, 4} {
		ocfg := oracle.Config{
			ProbeRound: 1, Flush: true, LineWords: lw, Seed: 23,
			FalsePresence: 0.05, FalseAbsence: 0.02,
		}
		acfg := Config{
			Seed: 7, Threshold: 0.8, MinObservations: 48,
			Quarantine: true, MaxRestarts: 2, TotalBudget: 2_000_000,
		}
		batch := runWithMode(t, BatchAuto, ocfg, acfg, true)
		scalar := runWithMode(t, BatchOff, ocfg, acfg, true)
		diffRuns(t, "noise", batch, scalar)
	}
}

// TestBatchScalarDifferentialEvictTime pins the Evict+Time interaction:
// the per-encryption probe mask cursor advances at commit time, so the
// masked observation stream must be identical to the scalar path's.
func TestBatchScalarDifferentialEvictTime(t *testing.T) {
	ocfg := oracle.Config{
		ProbeRound: 1, Flush: true, LineWords: 1, Seed: 5,
		Probe: oracle.ProbeEvictTime,
	}
	acfg := Config{Seed: 13, TotalBudget: 1_000_000, MinObservations: 8}
	batch := runWithMode(t, BatchAuto, ocfg, acfg, true)
	scalar := runWithMode(t, BatchOff, ocfg, acfg, true)
	diffRuns(t, "evicttime", batch, scalar)
}

// TestBatchScalarDifferentialBudgetAbort forces a mid-attack budget
// abort: the PartialResult degradation — which segment died, with how
// many observations — must be batch-invariant.
func TestBatchScalarDifferentialBudgetAbort(t *testing.T) {
	for _, budget := range []uint64{50, 700, 5_000} {
		ocfg := oracle.Config{ProbeRound: 1, Flush: true, LineWords: 2, Seed: 3}
		acfg := Config{Seed: 17, TotalBudget: budget}
		batch := runWithMode(t, BatchAuto, ocfg, acfg, true)
		scalar := runWithMode(t, BatchOff, ocfg, acfg, true)
		if batch.partial == nil {
			t.Fatalf("budget %d did not abort", budget)
		}
		diffRuns(t, "budget", batch, scalar)
	}
}
