package oracle

import (
	"fmt"

	"grinch/internal/bitutil"
	"grinch/internal/cache"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
)

// HierOracle runs the observation channel through a two-level cache
// hierarchy (cache.Hierarchy) instead of an ideal trace: the victim's
// S-box lookups travel L1→L2→DRAM and the attacker can only flush and
// probe the shared L2. Cache state — in particular the victim's private
// L1 — persists across encryptions, which is exactly what makes the
// inclusion policy decisive (the paper's future-work question):
//
//   - inclusive L2: attacker flushes reach the victim's L1, every
//     encryption re-exposes its first-touch accesses, the attack works;
//   - non-inclusive L2: the victim's L1 keeps serving warm lines, the
//     shared level goes quiet after the first encryption, the attack
//     starves (TestHierarchyDefeatsAttackWhenNonInclusive).
//
// It implements probe.Channel.
type HierOracle struct {
	cfg         Config
	cipher      *gift.Cipher64 //grinch:secret
	hier        *cache.Hierarchy
	table       probe.TableLayout
	lines       int
	encryptions uint64
	tracer      obs.Tracer
}

// NewHierarchyChannel builds the channel. The hierarchy's line size must
// equal cfg.LineWords (1 word = 1 byte) so the index→line mapping holds.
//
//grinch:secret key
func NewHierarchyChannel(key bitutil.Word128, cfg Config, hier *cache.Hierarchy, tableBase uint64) (*HierOracle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lb := hier.L2.Config().LineBytes; lb != cfg.LineWords {
		return nil, fmt.Errorf("oracle: hierarchy line size %d ≠ LineWords %d", lb, cfg.LineWords)
	}
	return &HierOracle{
		cfg:    cfg,
		cipher: gift.NewCipher64FromWord(key),
		hier:   hier,
		table:  probe.TableLayout{Base: tableBase, EntryBytes: 1, Entries: 16},
		lines:  16 / cfg.LineWords,
	}, nil
}

// Lines returns the observable table lines.
func (o *HierOracle) Lines() int { return o.lines }

// Encryptions returns the victim encryption count.
func (o *HierOracle) Encryptions() uint64 { return o.encryptions }

// SetTracer attaches an event tracer (nil disables tracing). The
// channel emits encryption boundaries plus one cache_snapshot of the
// shared L2 per Collect — the level the attack's signal lives in.
func (o *HierOracle) SetTracer(t obs.Tracer) { o.tracer = t }

// Collect runs one victim encryption through the hierarchy with the
// attacker's flush landing between rounds targetRound and targetRound+1
// (or before the encryption when Flush is false), then probes the
// shared L2.
func (o *HierOracle) Collect(pt uint64, targetRound int) probe.LineSet {
	o.encryptions++
	if o.tracer != nil {
		o.tracer.Emit(obs.Event{Kind: obs.KindEncryptionStart, Enc: o.encryptions, Cipher: "GIFT-64", Round: targetRound})
		defer func() {
			snap := probe.CacheSnapshot(o.hier.L2)
			snap.Enc = o.encryptions
			o.tracer.Emit(snap)
			o.tracer.Emit(obs.Event{Kind: obs.KindEncryptionEnd, Enc: o.encryptions})
		}()
	}

	first := 1
	if o.cfg.Flush {
		first = targetRound + 1
	}
	last := targetRound + o.cfg.ProbeRound
	if last > gift.Rounds64 {
		last = gift.Rounds64
	}
	states := o.cipher.SBoxInputsN(pt, last)

	// Rounds before the flush point warm the hierarchy unobserved.
	for r := 1; r < first; r++ {
		o.victimRound(states[r-1])
	}
	// The attacker's flush: only the shared L2 is within reach; the
	// hierarchy decides whether the victim's L1 copies go too.
	for l := 0; l < o.lines; l++ {
		o.hier.AttackerFlushLine(o.table.Base + uint64(l*o.cfg.LineWords))
	}
	// The observation window.
	for r := first; r <= last; r++ {
		o.victimRound(states[r-1])
	}
	// Probe the shared level.
	var set probe.LineSet
	for l := 0; l < o.lines; l++ {
		if o.hier.AttackerProbeLine(o.table.Base + uint64(l*o.cfg.LineWords)) {
			set = set.Add(l)
		}
	}
	return set
}

// victimRound issues one round's 16 table lookups through the hierarchy.
//
//grinch:secret state
func (o *HierOracle) victimRound(state uint64) {
	for seg := uint(0); seg < gift.Segments64; seg++ {
		idx := int(bitutil.Nibble(state, seg))
		o.hier.VictimAccess(o.table.EntryAddr(idx))
	}
}

var _ probe.Channel = (*HierOracle)(nil)
