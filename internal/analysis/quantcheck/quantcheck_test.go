package quantcheck

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grinch/internal/obs"
	"grinch/internal/obs/report"
)

var gift64Geom = Geometry{Entries: 16, EntryBytes: 1}

func TestPredictKnownValues(t *testing.T) {
	tests := []struct {
		lineBytes int
		lines     int
		p         float64
		bits      float64
	}{
		// p = 1 − (1 − 1/L)^15 for the 16-access GIFT-64 protocol.
		{1, 16, 0.620188, 0.689223},
		{2, 8, 0.865066, 0.209118},
		{4, 4, 0.986637, 0.019409},
		{8, 2, 0.999969, 0.000044},
	}
	for _, tt := range tests {
		pred, err := Predict(gift64Geom, tt.lineBytes, 16)
		if err != nil {
			t.Fatalf("Predict(%dB): %v", tt.lineBytes, err)
		}
		if pred.Lines != tt.lines {
			t.Errorf("lineBytes=%d: lines = %d, want %d", tt.lineBytes, pred.Lines, tt.lines)
		}
		if math.Abs(pred.SurvivalProb-tt.p) > 1e-5 {
			t.Errorf("lineBytes=%d: p = %.6f, want %.6f", tt.lineBytes, pred.SurvivalProb, tt.p)
		}
		if math.Abs(pred.BitsPerObservation-tt.bits) > 1e-5 {
			t.Errorf("lineBytes=%d: bits/obs = %.6f, want %.6f", tt.lineBytes, pred.BitsPerObservation, tt.bits)
		}
		if pred.ObsToConverge <= 1 {
			t.Errorf("lineBytes=%d: E[obs] = %.2f, want > 1", tt.lineBytes, pred.ObsToConverge)
		}
	}
}

func TestPredictMoreAccessesLeakSlower(t *testing.T) {
	// GIFT-128 makes 32 accesses per window, so wrong lines are touched
	// more often and each observation eliminates less.
	p16, err := Predict(gift64Geom, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	p32, err := Predict(gift64Geom, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p32.BitsPerObservation >= p16.BitsPerObservation {
		t.Errorf("32 accesses should leak less per observation: %.4f >= %.4f",
			p32.BitsPerObservation, p16.BitsPerObservation)
	}
	if p32.ObsToConverge <= p16.ObsToConverge {
		t.Errorf("32 accesses should converge slower: %.2f <= %.2f",
			p32.ObsToConverge, p16.ObsToConverge)
	}
}

func TestPredictDegenerate(t *testing.T) {
	// A table fitting in one line is unobservable.
	if _, err := Predict(Geometry{Entries: 4, EntryBytes: 1}, 8, 16); err == nil {
		t.Error("Predict should reject a single-line table")
	}
	// One access per window never touches wrong lines; the model does
	// not apply.
	if _, err := Predict(gift64Geom, 1, 1); err == nil {
		t.Error("Predict should reject a 1-access protocol")
	}
}

func TestFitSegmentExactDecay(t *testing.T) {
	// A synthetic curve decaying exactly like p = 1/2 over L = 16:
	// survivors 16, 8, 4, 2, 1 → lifetimes 15+7+3+1+0 = 26,
	// p̂ = 26/(15+26) = 0.634... is the small-sample-biased estimate;
	// what must hold exactly is the lifetime sum and the monotone
	// relation to the universe.
	s := report.Segment{
		Key: report.SegmentKey{Cipher: "GIFT-64", Round: 1},
		Curve: []report.Point{
			{Observations: 1, Survivors: 16},
			{Observations: 2, Survivors: 8},
			{Observations: 3, Survivors: 4},
			{Observations: 4, Survivors: 2},
			{Observations: 5, Survivors: 1},
		},
		Recovered: true,
	}
	fit := FitSegment(s, 16)
	if fit.WrongLifetimes != 26 {
		t.Errorf("lifetimes = %.0f, want 26", fit.WrongLifetimes)
	}
	if fit.Observations != 5 {
		t.Errorf("observations = %d, want 5", fit.Observations)
	}
	want := 26.0 / 41.0
	if math.Abs(fit.SurvivalProb-want) > 1e-12 {
		t.Errorf("p̂ = %.6f, want %.6f", fit.SurvivalProb, want)
	}
	if math.Abs(fit.BitsPerObservation+math.Log2(want)) > 1e-12 {
		t.Errorf("bits = %.6f, want %.6f", fit.BitsPerObservation, -math.Log2(want))
	}
}

func TestFitSegmentImmediateConvergence(t *testing.T) {
	// All wrong candidates die on the first observation: zero lifetime,
	// infinite measured bits (nothing survived to be measured).
	s := report.Segment{Curve: []report.Point{{Observations: 1, Survivors: 1}}}
	fit := FitSegment(s, 16)
	if fit.WrongLifetimes != 0 {
		t.Errorf("lifetimes = %.0f, want 0", fit.WrongLifetimes)
	}
	if !math.IsInf(fit.BitsPerObservation, 1) {
		t.Errorf("bits = %v, want +Inf", fit.BitsPerObservation)
	}
}

func loadTrace(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestCheckFixtures is the closed loop at test scope: for every
// committed fixture geometry the measured bits-per-observation must
// match the static prediction within the default tolerance. The
// deviations observed at fixture scale (2 pooled segments) are ~3%
// for the 16-line geometry and under 20% for the coarser ones, where
// relative error on a near-zero bit yield is intrinsically noisy.
func TestCheckFixtures(t *testing.T) {
	geoms := map[string]Geometry{"GIFT-64": gift64Geom}
	fixtures := []struct {
		path  string
		lines int
	}{
		{"trace-linewords1.jsonl", 16},
		{"trace-linewords2.jsonl", 8},
		{"trace-linewords4.jsonl", 4},
	}
	for _, fx := range fixtures {
		events := loadTrace(t, filepath.Join("testdata", fx.path))
		rep, err := Check(events, geoms, DefaultTolerance)
		if err != nil {
			t.Fatalf("%s: %v", fx.path, err)
		}
		if len(rep.Groups) != 1 {
			t.Fatalf("%s: %d groups, want 1", fx.path, len(rep.Groups))
		}
		g := rep.Groups[0]
		if g.Pred.Lines != fx.lines {
			t.Errorf("%s: inferred %d lines, want %d", fx.path, g.Pred.Lines, fx.lines)
		}
		if g.Recovered != len(g.Segs) || g.Recovered != 2 {
			t.Errorf("%s: %d/%d segments recovered, want 2/2", fx.path, g.Recovered, len(g.Segs))
		}
		if g.Deviation > DefaultTolerance {
			t.Errorf("%s: deviation %.1f%% exceeds tolerance %.0f%% (pred %.4f, meas %.4f)",
				fx.path, g.Deviation*100, DefaultTolerance*100,
				g.Pred.BitsPerObservation, g.MeasuredBits)
		}
		if !rep.OK() {
			t.Errorf("%s: report not OK", fx.path)
		}
	}
}

// TestCheckReportFixture runs the check against the report package's
// committed Fig. 3 fixture — the same trace make check and CI gate.
func TestCheckReportFixture(t *testing.T) {
	events := loadTrace(t, filepath.Join("..", "..", "obs", "report", "testdata", "trace.jsonl"))
	rep, err := Check(events, map[string]Geometry{"GIFT-64": gift64Geom}, DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, g := range rep.Groups {
			t.Logf("%s: pred %.4f meas %.4f dev %.1f%%",
				g.Cipher, g.Pred.BitsPerObservation, g.MeasuredBits, g.Deviation*100)
		}
		t.Fatal("Fig. 3 fixture drifted outside tolerance")
	}
}

// TestCheckDetectsGeometryDrift: shrink the static geometry below what
// the trace observes and the check must fail loudly, not fit quietly.
func TestCheckDetectsGeometryDrift(t *testing.T) {
	events := loadTrace(t, filepath.Join("testdata", "trace-linewords1.jsonl"))
	_, err := Check(events, map[string]Geometry{"GIFT-64": {Entries: 4, EntryBytes: 1}}, DefaultTolerance)
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("undersized geometry should fail the universe snap, got %v", err)
	}
}

// TestCheckDetectsModelDrift: a deliberately miscalibrated tolerance
// of ~0 must flag even the healthy fixture, proving the gate can fire.
func TestCheckDetectsModelDrift(t *testing.T) {
	events := loadTrace(t, filepath.Join("testdata", "trace-linewords1.jsonl"))
	rep, err := Check(events, map[string]Geometry{"GIFT-64": gift64Geom}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("a 0.1% tolerance should reject the stochastic fixture fit")
	}
}

func TestCheckMissingGeometry(t *testing.T) {
	events := loadTrace(t, filepath.Join("testdata", "trace-linewords1.jsonl"))
	_, err := Check(events, map[string]Geometry{}, DefaultTolerance)
	if err == nil || !strings.Contains(err.Error(), "no static geometry") {
		t.Fatalf("missing geometry should fail, got %v", err)
	}
}

func TestCheckEmptyTrace(t *testing.T) {
	if _, err := Check(nil, map[string]Geometry{"GIFT-64": gift64Geom}, DefaultTolerance); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestProtocolFor(t *testing.T) {
	for _, cipher := range []string{"GIFT-64", "GIFT-128", "PRESENT-80"} {
		p, ok := ProtocolFor(cipher)
		if !ok {
			t.Errorf("no protocol for %s", cipher)
			continue
		}
		if p.Accesses < 16 || p.TableName != "SBox" {
			t.Errorf("%s: implausible protocol %+v", cipher, p)
		}
	}
	if _, ok := ProtocolFor("DES"); ok {
		t.Error("unknown cipher should not resolve")
	}
}

// TestWriteTableDeterministic pins the renderer: two renders of the
// same report must be byte-identical (quantcheck sits inside the
// determinism-checked tree).
func TestWriteTableDeterministic(t *testing.T) {
	events := loadTrace(t, filepath.Join("testdata", "trace-linewords2.jsonl"))
	rep, err := Check(events, map[string]Geometry{"GIFT-64": gift64Geom}, DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := rep.WriteTable(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteSegments(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteSegments(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("report rendering is not deterministic")
	}
}
