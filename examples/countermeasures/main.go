// Countermeasures: both protections from paper §IV-C demonstrated —
// the reshaped single-line S-box blocks the channel entirely, and the
// whitened key schedule lets the channel leak while making the leaked
// sub-keys useless for master-key recovery.
//
//	go run ./examples/countermeasures
package main

import (
	"fmt"
	"log"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/countermeasure"
	"grinch/internal/gift"
	"grinch/internal/oracle"
)

func main() {
	key := bitutil.Word128{Lo: 0x636f756e7465726d, Hi: 0x6561737572657321}

	// --- Baseline: the unprotected cipher falls in a few hundred
	// encryptions. ---
	base, err := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
	must(err)
	a, err := core.NewAttacker(base, core.Config{Seed: 1})
	must(err)
	res, err := a.RecoverKey()
	must(err)
	fmt.Printf("unprotected GIFT-64: key recovered in %d encryptions (match=%v)\n\n",
		res.Encryptions, res.Key == key)

	// --- Countermeasure 1: reshape the 16×4-bit table into 8×8-bit so
	// it fits one 8-byte cache line. The channel then has a single
	// observable line and the attack cannot even be instantiated. ---
	hardened := countermeasure.NewHardenedCipher64(key)
	pt := uint64(0x1234567890abcdef)
	fmt.Printf("reshaped-table cipher produces identical ciphertexts: %v\n",
		hardened.EncryptBlock(pt) == gift.NewCipher64FromWord(key).EncryptBlock(pt))
	oneLine, err := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 16})
	must(err)
	if _, err := core.NewAttacker(oneLine, core.Config{}); err != nil {
		fmt.Printf("countermeasure 1 (8×8 S-box, one cache line): attack rejected — %v\n\n", err)
	} else {
		log.Fatal("countermeasure 1 failed")
	}

	// --- Countermeasure 2: whiten the early sub-keys with key material
	// not yet consumed. GRINCH still reads the cache perfectly and
	// recovers the per-round sub-keys — but they are whitened images,
	// and the master key cannot be reassembled. ---
	whitened := countermeasure.NewWhitenedCipher64(key)
	ch, err := oracle.NewFromTracer(whitened, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
	must(err)
	a2, err := core.NewAttacker(ch, core.Config{Seed: 2})
	must(err)
	res2, err := a2.RecoverKey()
	must(err)
	subKeysLeak := true
	for t, rk := range res2.RoundKeys {
		if rk.U != whitened.RoundKeys()[t].U || rk.V != whitened.RoundKeys()[t].V {
			subKeysLeak = false
		}
	}
	fmt.Printf("countermeasure 2 (whitened schedule) after %d encryptions:\n", res2.Encryptions)
	fmt.Printf("  per-round sub-keys still leak through the cache: %v\n", subKeysLeak)
	fmt.Printf("  assembled master key equals the real key:        %v\n", res2.Key == key)
	fmt.Printf("  assembled key verifies against the cipher:       %v\n",
		core.Verify(res2.Key, pt, whitened.EncryptBlock(pt)))
	if res2.Key == key {
		log.Fatal("countermeasure 2 failed")
	}
	fmt.Println("  → the cache leak persists, but key retrieval is defeated.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
