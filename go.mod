module grinch

go 1.22
