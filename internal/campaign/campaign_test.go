package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"grinch/internal/faults"
	"grinch/internal/obs"
	"grinch/internal/rng"
)

// toyExec is a deterministic executor: every field of the measurement
// is a pure function of the job seed, with a little seed-dependent CPU
// work so scheduling actually interleaves. A traced run gets a short
// seed-determined event stream.
func toyExec(job Job, tracer obs.Tracer) (Measurement, error) {
	r := rng.New(job.Seed)
	n := 100 + r.Intn(1000)
	acc := uint64(0)
	for i := 0; i < n*50; i++ {
		acc += r.Uint64() >> 60
	}
	if tracer != nil {
		tracer.Emit(obs.Event{Kind: obs.KindEncryptionStart, Enc: 1})
		tracer.Emit(obs.Event{Kind: obs.KindCandidateUpdate, Enc: 1, Survivors: n % 16, Observations: uint64(n)})
		tracer.Emit(obs.Event{Kind: obs.KindEncryptionEnd, Enc: 1})
	}
	return Measurement{Encryptions: uint64(n) + acc%2, DroppedOut: n > 1050, Correct: n%2 == 0}, nil
}

func testSpec() Spec {
	return Spec{
		Name:        "toy",
		Kind:        "toy",
		Seed:        2021,
		Trials:      3,
		Budget:      1000,
		LineWords:   []int{1, 2},
		Flush:       []bool{true, false},
		ProbeRounds: []int{1, 2, 3},
	}
}

func TestExpansion(t *testing.T) {
	spec := testSpec()
	jobs := spec.Jobs()
	if len(jobs) != spec.NumJobs() || len(jobs) != 2*2*3*3 {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), 2*2*3*3)
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has index %d", i, j.Index)
		}
		if j.Seed != rng.Derive(spec.Seed, uint64(i)) {
			t.Fatalf("job %d seed not derived from (campaign seed, index)", i)
		}
		if j.Budget != spec.Budget {
			t.Fatalf("job %d lost the budget", i)
		}
	}
	// Canonical nesting: trials innermost, then probe rounds.
	if jobs[0].Point.Trial != 0 || jobs[1].Point.Trial != 1 || jobs[3].Point.Trial != 0 {
		t.Fatalf("trials not innermost: %+v", jobs[:4])
	}
	if jobs[0].Point.ProbeRound != 1 || jobs[3].Point.ProbeRound != 2 {
		t.Fatalf("probe rounds not second-innermost: %+v", jobs[:4])
	}
	// Expansion must be reproducible.
	again := spec.Jobs()
	if !reflect.DeepEqual(jobs, again) {
		t.Fatal("expansion is not deterministic")
	}
}

// TestFaultAxisExpansion pins the fault-plan axis: each named plan is
// one grid coordinate nested between probe rounds and trials, and every
// job carries its plan plus the spec-level retry/deadline knobs.
func TestFaultAxisExpansion(t *testing.T) {
	spec := testSpec()
	spec.FaultPlans = []faults.Plan{
		{Name: "mild", Faults: []faults.Fault{{Kind: faults.KindDrop, Probability: 0.1}}},
		{Name: "harsh", Faults: []faults.Fault{{Kind: faults.KindDrop, Probability: 0.5}}},
	}
	spec.Retry = &RetrySpec{Attempts: 3, BackoffPS: 100}
	spec.DeadlinePS = 5000
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	base := testSpec().NumJobs()
	jobs := spec.Jobs()
	if len(jobs) != spec.NumJobs() || len(jobs) != 2*base {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), 2*base)
	}
	// Nesting: trials innermost, fault plans immediately outside them.
	if jobs[0].Point.Fault != "mild" || jobs[3].Point.Fault != "harsh" || jobs[6].Point.Fault != "mild" {
		t.Fatalf("fault axis not between probe rounds and trials: %v %v %v",
			jobs[0].Point, jobs[3].Point, jobs[6].Point)
	}
	for i, j := range jobs {
		if j.FaultPlan.Name != j.Point.Fault {
			t.Fatalf("job %d carries plan %q for point fault %q", i, j.FaultPlan.Name, j.Point.Fault)
		}
		if j.Retry != (RetrySpec{Attempts: 3, BackoffPS: 100}) || j.DeadlinePS != 5000 {
			t.Fatalf("job %d lost retry/deadline: %+v", i, j)
		}
		if j.Seed != rng.Derive(spec.Seed, uint64(i)) {
			t.Fatalf("job %d seed not derived from index", i)
		}
	}
	// The fault name is part of the cell identity, so the two plans'
	// trials aggregate into distinct cells.
	if jobs[0].Point.CellKey() == jobs[3].Point.CellKey() {
		t.Fatal("fault plans share a cell key")
	}
	// The axis changes the fingerprint; an unfaulted spec keeps its
	// pre-axis canonical JSON (pointer/omitempty fields stay absent).
	if spec.Fingerprint() == testSpec().Fingerprint() {
		t.Fatal("fault axis not part of the fingerprint")
	}
	b, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fault_plans", "retry", "deadline_ps"} {
		if strings.Contains(string(b), key) {
			t.Fatalf("unfaulted spec JSON mentions %q: %s", key, b)
		}
	}
}

// TestSpecValidatesFaultAxis covers the axis-level rejections: invalid
// plans, missing and duplicate names, negative retry attempts.
func TestSpecValidatesFaultAxis(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) {
			s.FaultPlans = []faults.Plan{{Name: "x", Faults: []faults.Fault{{Kind: "gamma-ray"}}}}
		},
		func(s *Spec) {
			s.FaultPlans = []faults.Plan{{Faults: []faults.Fault{{Kind: faults.KindDrop}}}}
		},
		func(s *Spec) {
			s.FaultPlans = []faults.Plan{{Name: "a"}, {Name: "a"}}
		},
		func(s *Spec) { s.Retry = &RetrySpec{Attempts: -1} },
	}
	for i, mutate := range bad {
		spec := testSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSpecFingerprintDistinguishesGrids(t *testing.T) {
	a, b := testSpec(), testSpec()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal specs disagree on fingerprint")
	}
	b.ProbeRounds = []int{1, 2}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different grids share a fingerprint")
	}
	// Trials=0 normalizes to 1, so the two spell the same campaign.
	c := testSpec()
	c.Trials = 0
	d := testSpec()
	d.Trials = 1
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatal("normalized specs disagree on fingerprint")
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"kind":"toy","probe_round":[1]}`)); err == nil {
		t.Fatal("misspelled axis accepted")
	}
	s, err := ParseSpec([]byte(`{"name":"x","kind":"toy","seed":7,"probe_rounds":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.ProbeRounds) != 2 {
		t.Fatalf("parsed spec %+v", s)
	}
}

// run executes the toy campaign and returns the collector results plus
// the deterministic JSONL bytes.
func runToy(t *testing.T, workers int, opts Options) ([]Result, []byte) {
	t.Helper()
	col := &Collector{}
	var jsonl bytes.Buffer
	opts.Workers = workers
	opts.Sinks = append(opts.Sinks, col, &JSONLSink{W: &jsonl})
	rep, err := Run(context.Background(), testSpec(), toyExec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != rep.Total {
		t.Fatalf("delivered %d of %d", rep.Delivered, rep.Total)
	}
	return col.Results, jsonl.Bytes()
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	res1, out1 := runToy(t, 1, Options{})
	res8, out8 := runToy(t, 8, Options{})
	// Results must agree field-for-field once timing metadata is
	// stripped — it is the only part execution order may touch.
	strip := func(rs []Result) []Result {
		out := append([]Result(nil), rs...)
		for i := range out {
			out[i] = out[i].Canonical()
		}
		return out
	}
	if !reflect.DeepEqual(strip(res1), strip(res8)) {
		t.Fatal("results differ between -workers=1 and -workers=8")
	}
	if !bytes.Equal(out1, out8) {
		t.Fatal("JSONL output not byte-identical between -workers=1 and -workers=8")
	}
}

// TestTraceDeterminismAcrossWorkerCounts extends the determinism
// contract to the event trace: the JSONL trace bytes must be identical
// for any worker count, and every event must carry its job's index so
// per-job streams never interleave.
func TestTraceDeterminismAcrossWorkerCounts(t *testing.T) {
	traceToy := func(workers int) []byte {
		var buf bytes.Buffer
		w := obs.NewWriter(&buf)
		_, err := Run(context.Background(), testSpec(), toyExec,
			Options{Workers: workers, Trace: w})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t1 := traceToy(1)
	t8 := traceToy(8)
	if !bytes.Equal(t1, t8) {
		t.Fatal("trace JSONL not byte-identical between -workers=1 and -workers=8")
	}
	if bytes.Equal(traceToy(8), nil) {
		t.Fatal("traced run produced no events")
	}
	events, err := obs.ReadAll(bytes.NewReader(t1))
	if err != nil {
		t.Fatal(err)
	}
	total := testSpec().NumJobs()
	if len(events) != 3*total {
		t.Fatalf("trace holds %d events, want %d", len(events), 3*total)
	}
	for i, e := range events {
		if want := i / 3; e.Job != want {
			t.Fatalf("event %d stamped job %d, want %d (jobs out of index order)", i, e.Job, want)
		}
	}
}

// TestTraceSkipsJournalReplayedJobs pins the documented resume
// semantics: replayed jobs were not re-executed, so they contribute no
// events, and the trace of a resumed run covers only the remainder.
func TestTraceSkipsJournalReplayedJobs(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "toy.journal")
	if _, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 2, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := obs.NewWriter(&buf)
	rep, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 2, Journal: journal, Trace: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 0 {
		t.Fatalf("replay executed %d jobs", rep.Executed)
	}
	if buf.Len() != 0 {
		t.Fatalf("fully replayed run emitted %d trace bytes, want 0", buf.Len())
	}
}

// TestCanonicalStripsExactlyTimingFields pins the determinism contract
// to the Result type: Canonical must zero DurationNS and Worker and
// nothing else, so a future field added to Result is deterministic by
// default and timing can never leak back into canonical output.
func TestCanonicalStripsExactlyTimingFields(t *testing.T) {
	r := Result{
		Job:   3,
		Point: Point{Kind: "noise", Platform: "soc", MHz: 50, Trial: 2},
		Seed:  9,
		Measurement: Measurement{
			Encryptions: 42, DroppedOut: true, Correct: true, Round: 4,
		},
		Failed:     true,
		Err:        "injected",
		DurationNS: 12345,
		Worker:     7,
	}
	c := r.Canonical()
	if c.DurationNS != 0 || c.Worker != 0 {
		t.Fatalf("Canonical kept timing metadata: %+v", c)
	}
	want := r
	want.DurationNS = 0
	want.Worker = 0
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("Canonical altered a deterministic field:\ngot  %+v\nwant %+v", c, want)
	}
}

// TestTimingNeverReachesDeterministicBytes is the regression test for
// the wall-clock readings in the runner: the journal records real
// durations, but a full replay through the sinks must produce the same
// bytes as a fresh run, and the deterministic JSONL stream must not
// mention the timing keys at all.
func TestTimingNeverReachesDeterministicBytes(t *testing.T) {
	_, fresh := runToy(t, 4, Options{})

	journal := filepath.Join(t.TempDir(), "toy.journal")
	if _, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 4, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	var replay bytes.Buffer
	rep, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 4, Journal: journal, Sinks: []Sink{&JSONLSink{W: &replay}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 0 {
		t.Fatalf("replay executed %d jobs, want 0 (all journaled)", rep.Executed)
	}
	if !bytes.Equal(fresh, replay.Bytes()) {
		t.Fatal("journal-replayed JSONL differs from a fresh run's bytes")
	}
	for _, key := range []string{"duration_ns", "worker"} {
		if bytes.Contains(fresh, []byte(key)) {
			t.Fatalf("deterministic JSONL stream contains timing key %q", key)
		}
	}
}

func TestPanicBecomesFailedResult(t *testing.T) {
	exec := func(job Job, tr obs.Tracer) (Measurement, error) {
		if job.Index == 7 {
			panic("injected")
		}
		if job.Index == 9 {
			return Measurement{}, fmt.Errorf("injected error")
		}
		return toyExec(job, tr)
	}
	col := &Collector{}
	rep, err := Run(context.Background(), testSpec(), exec, Options{Workers: 4, Sinks: []Sink{col}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 2 {
		t.Fatalf("reported %d failures, want 2", rep.Failed)
	}
	if r := col.Results[7]; !r.Failed || !strings.Contains(r.Err, "panic: injected") {
		t.Fatalf("job 7: %+v", r)
	}
	if r := col.Results[9]; !r.Failed || r.Err != "injected error" {
		t.Fatalf("job 9: %+v", r)
	}
	if col.Results[8].Failed {
		t.Fatal("healthy neighbor job marked failed")
	}
}

// TestPanicsDontWedgeWorkerPool floods the pool with panicking jobs:
// every job must still be delivered (the pool drains instead of
// deadlocking), failures must be counted, and a journal resume must
// replay the failed cells into the sinks — the record -keep-going's
// exit decision is based on — without re-executing them.
func TestPanicsDontWedgeWorkerPool(t *testing.T) {
	exec := func(job Job, tr obs.Tracer) (Measurement, error) {
		if job.Index%2 == 0 {
			panic(fmt.Sprintf("boom %d", job.Index))
		}
		return toyExec(job, tr)
	}
	journal := filepath.Join(t.TempDir(), "toy.journal")
	total := testSpec().NumJobs()
	col := &Collector{}
	rep, err := Run(context.Background(), testSpec(), exec,
		Options{Workers: 4, Journal: journal, Sinks: []Sink{col}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != total || len(col.Results) != total {
		t.Fatalf("delivered %d of %d results", rep.Delivered, total)
	}
	if rep.Failed != (total+1)/2 {
		t.Fatalf("reported %d failures, want %d", rep.Failed, (total+1)/2)
	}
	for i, r := range col.Results {
		if want := i%2 == 0; r.Failed != want {
			t.Fatalf("job %d failed=%v, want %v (%+v)", i, r.Failed, want, r)
		}
	}

	// Resume: nothing re-executes, and the sinks still see every failed
	// cell, so a driver like cmd/campaign's -keep-going logic reaches
	// the same exit decision on a resumed run.
	col2 := &Collector{}
	rep2, err := Run(context.Background(), testSpec(), exec,
		Options{Workers: 4, Journal: journal, Sinks: []Sink{col2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Executed != 0 {
		t.Fatalf("resume re-executed %d jobs", rep2.Executed)
	}
	failed := 0
	for _, r := range col2.Results {
		if r.Failed {
			failed++
		}
	}
	if failed != (total+1)/2 {
		t.Fatalf("replay delivered %d failed cells, want %d", failed, (total+1)/2)
	}
}

func TestJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "toy.journal")
	spec := testSpec()
	total := spec.NumJobs()

	// Invocation log: which job indices actually executed, per run.
	var mu sync.Mutex
	executed := map[int]int{}
	exec := func(job Job, tr obs.Tracer) (Measurement, error) {
		mu.Lock()
		executed[job.Index]++
		mu.Unlock()
		return toyExec(job, tr)
	}

	// First run: cancel once a third of the grid has completed.
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{
		Workers: 4,
		Journal: journal,
		Progress: func(done, _ int) {
			if done >= total/3 {
				cancel()
			}
		},
	}
	rep, err := Run(ctx, spec, exec, opts)
	if err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if rep.Executed == 0 || rep.Executed == total {
		t.Fatalf("interruption executed %d of %d jobs", rep.Executed, total)
	}
	firstRun := rep.Executed

	// Second run: must execute exactly the remainder, no job twice.
	col := &Collector{}
	var jsonl bytes.Buffer
	rep2, err := Run(context.Background(), spec, exec,
		Options{Workers: 4, Journal: journal, Sinks: []Sink{col, &JSONLSink{W: &jsonl}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != firstRun {
		t.Fatalf("resume skipped %d jobs, journal held %d", rep2.Skipped, firstRun)
	}
	if rep2.Executed != total-firstRun {
		t.Fatalf("resume executed %d jobs, want %d", rep2.Executed, total-firstRun)
	}
	mu.Lock()
	for idx, n := range executed {
		if n != 1 {
			t.Fatalf("job %d executed %d times across interrupt+resume", idx, n)
		}
	}
	if len(executed) != total {
		t.Fatalf("only %d of %d jobs ever executed", len(executed), total)
	}
	mu.Unlock()

	// The resumed campaign's sink output must match a clean run's.
	_, cleanJSONL := runToy(t, 4, Options{})
	if !bytes.Equal(jsonl.Bytes(), cleanJSONL) {
		t.Fatal("resumed JSONL differs from a clean run")
	}
}

func TestJournalRejectsForeignSpec(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "toy.journal")
	if _, err := Run(context.Background(), testSpec(), toyExec, Options{Workers: 2, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Seed = 9999
	if _, err := Run(context.Background(), other, toyExec, Options{Workers: 2, Journal: journal}); err == nil {
		t.Fatal("journal accepted a different campaign")
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "toy.journal")
	if _, err := Run(context.Background(), testSpec(), toyExec, Options{Workers: 2, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	// Simulate a hard kill mid-append: truncate the last record.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	var ran []int
	var mu sync.Mutex
	exec := func(job Job, tr obs.Tracer) (Measurement, error) {
		mu.Lock()
		ran = append(ran, job.Index)
		mu.Unlock()
		return toyExec(job, tr)
	}
	rep, err := Run(context.Background(), testSpec(), exec, Options{Workers: 2, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the torn job re-ran.
	if rep.Executed != 1 || len(ran) != 1 {
		t.Fatalf("torn journal re-ran %d jobs (%v), want 1", rep.Executed, ran)
	}
}

func TestAggregatorGroupsCells(t *testing.T) {
	agg := &Aggregator{}
	_, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 4, Sinks: []Sink{agg}})
	if err != nil {
		t.Fatal(err)
	}
	cells := agg.Cells()
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	for _, c := range cells {
		if len(c.Trials) != 3 {
			t.Fatalf("cell %s has %d trials, want 3", c.Point, len(c.Trials))
		}
		if c.Point.Trial != 0 {
			t.Fatalf("cell point retains a trial index: %+v", c.Point)
		}
		if s := c.Summary(); s.N != 3 || s.Median == 0 {
			t.Fatalf("cell summary %+v", s)
		}
	}
}

func TestCSVSinkShape(t *testing.T) {
	var buf bytes.Buffer
	_, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 2, Sinks: []Sink{&CSVSink{W: &buf}}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+testSpec().NumJobs() {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job,kind,platform") {
		t.Fatalf("CSV header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != len(csvHeader)-1 {
			t.Fatalf("CSV row has %d fields: %q", n+1, l)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	_, err := Run(context.Background(), testSpec(), toyExec,
		Options{Workers: 4, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	total := uint64(testSpec().NumJobs())
	if snap.JobsTotal != total || snap.JobsDone != total {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.QueueDepth != 0 || snap.InFlight != 0 {
		t.Fatalf("counters not drained: %+v", snap)
	}
	if snap.Encryptions == 0 || snap.JobMSMax < snap.JobMSMean {
		t.Fatalf("snapshot %+v", snap)
	}
	// expvar.Var-style rendering.
	if s := m.String(); !strings.Contains(s, `"jobs_done":36`) {
		t.Fatalf("metrics JSON %s", s)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Name: "nokind"}, toyExec, Options{}); err == nil {
		t.Fatal("kindless spec accepted")
	}
}

// TestFailureAccountingAcrossResume pins the -keep-going accounting
// contract: a failed job is counted exactly once no matter how many
// runs replay it from the journal. Replayed failures land in
// Report.FailedReplayed (never in Report.Failed), and the metrics'
// jobs_failed counter is seeded with them instead of re-counting them
// as they pass through the sinks.
func TestFailureAccountingAcrossResume(t *testing.T) {
	spec := testSpec()
	total := spec.NumJobs()
	jobs := spec.Jobs()
	journal := filepath.Join(t.TempDir(), "toy.journal")

	// Hand-journal the first half of the grid: every third job failed.
	j, prior, err := OpenJournal(journal, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(prior))
	}
	half := total / 2
	priorFailed := 0
	for i := 0; i < half; i++ {
		r := Result{Job: jobs[i].Index, Point: jobs[i].Point, Seed: jobs[i].Seed}
		if i%3 == 0 {
			r.Failed = true
			r.Err = "injected (previous run)"
			priorFailed++
		} else {
			m, _ := toyExec(jobs[i], nil)
			r.Measurement = m
		}
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: the second half executes, with fresh failures of its own.
	wantExecFailed := 0
	for i := half; i < total; i++ {
		if i%5 == 0 {
			wantExecFailed++
		}
	}
	exec := func(job Job, tr obs.Tracer) (Measurement, error) {
		if job.Index < half {
			t.Errorf("journaled job %d re-executed", job.Index)
		}
		if job.Index%5 == 0 {
			return Measurement{}, fmt.Errorf("injected (this run)")
		}
		return toyExec(job, tr)
	}
	metrics := NewMetrics()
	rep, err := Run(context.Background(), spec, exec,
		Options{Workers: 4, Journal: journal, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != half || rep.Executed != total-half {
		t.Fatalf("skipped %d executed %d, want %d and %d", rep.Skipped, rep.Executed, half, total-half)
	}
	if rep.FailedReplayed != priorFailed {
		t.Fatalf("FailedReplayed = %d, want %d", rep.FailedReplayed, priorFailed)
	}
	if rep.Failed != wantExecFailed {
		t.Fatalf("Failed = %d, want %d (executed failures only)", rep.Failed, wantExecFailed)
	}
	if got := metrics.Snapshot().JobsFailed; got != uint64(priorFailed+wantExecFailed) {
		t.Fatalf("jobs_failed = %d, want %d (each failed job once)", got, priorFailed+wantExecFailed)
	}

	// A second resume replays everything: all failures move to
	// FailedReplayed, none are executed, and jobs_failed stays the same
	// — not doubled.
	metrics2 := NewMetrics()
	rep2, err := Run(context.Background(), spec, exec,
		Options{Workers: 4, Journal: journal, Metrics: metrics2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Executed != 0 || rep2.Failed != 0 {
		t.Fatalf("full replay executed %d (failed %d), want none", rep2.Executed, rep2.Failed)
	}
	if rep2.FailedReplayed != priorFailed+wantExecFailed {
		t.Fatalf("full replay FailedReplayed = %d, want %d", rep2.FailedReplayed, priorFailed+wantExecFailed)
	}
	if got := metrics2.Snapshot().JobsFailed; got != uint64(priorFailed+wantExecFailed) {
		t.Fatalf("full replay jobs_failed = %d, want %d (not double-counted)", got, priorFailed+wantExecFailed)
	}
}
