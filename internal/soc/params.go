// Package soc assembles the two hardware platforms of the GRINCH paper
// (§IV-A) from the simulation substrates:
//
//   - SingleSoC: one RISC-class processor, a shared L1 cache behind a
//     bus, and an RTOS-style round-robin scheduler with a 10 ms quantum.
//     Victim and attacker are tasks on the same core, so the attacker
//     only observes the cache when the victim is preempted.
//
//   - MPSoC: a 3×3 tile mesh (seven processors, a shared-cache tile and
//     an I/O tile) interconnected by a NoC with XY deterministic
//     routing. The attacker owns a tile and probes concurrently with
//     the victim ("the attacker can write content to the shared cache
//     as desired", §IV-B3).
//
// Both platforms run the same victim (package internal/victim) and
// expose the same observation interface to the attack: a sequence of
// probe windows per encryption, adapted to probe.Channel by
// PlatformChannel.
package soc

import (
	"grinch/internal/cache"
	"grinch/internal/noc"
	"grinch/internal/probe"
	"grinch/internal/sim"
	"grinch/internal/victim"
)

// ProbePrimitive selects the single-SoC attacker's probing technique.
type ProbePrimitive int

const (
	// PrimitiveFlushReload uses the flush instruction (the paper's
	// preferred method, §III-C).
	PrimitiveFlushReload ProbePrimitive = iota
	// PrimitivePrimeProbe fills the table's cache sets with attacker
	// lines instead — the fallback when no flush instruction exists
	// ("Optionally, the attacker can flush the cache": here it can't).
	PrimitivePrimeProbe
)

// String names the primitive as used in metric labels.
func (p ProbePrimitive) String() string {
	if p == PrimitivePrimeProbe {
		return "prime_probe"
	}
	return "flush_reload"
}

// Params configures a platform.
type Params struct {
	// ClockMHz is the core (and uncore) clock. The paper evaluates 10,
	// 25 and 50 MHz.
	ClockMHz uint64
	// CacheLineBytes is the shared L1 line size in bytes (the paper's
	// word is one byte; Table I sweeps 1/2/4/8).
	CacheLineBytes int
	// TableBase is the victim S-box table's base address (line-aligned).
	TableBase uint64

	// Timing is the victim's per-round cycle budget.
	Timing victim.Timing

	// Quantum and CtxSwitchCycles configure the single-SoC RTOS
	// scheduler (paper: 10 ms quantum).
	Quantum         sim.Time
	CtxSwitchCycles uint64
	// Primitive selects the single-SoC attacker's probing technique.
	Primitive ProbePrimitive
	// EvictionBase is the attacker's eviction-buffer base address for
	// Prime+Probe (must not overlap the victim's data).
	EvictionBase uint64
	// BusCyclesPerAccess is the bus transfer cost of one memory access
	// on the single SoC.
	BusCyclesPerAccess uint64

	// Mesh configures the MPSoC NoC; VictimTile, CacheTile and
	// AttackerTile place the actors on it.
	Mesh         noc.Config
	VictimTile   noc.Coord
	CacheTile    noc.Coord
	AttackerTile noc.Coord
	// AttackerPoll is the MPSoC attacker's probe period; 0 derives half
	// a victim round time automatically.
	AttackerPoll sim.Time
}

// DefaultParams returns the paper-calibrated platform parameters for a
// clock frequency. Calibration notes:
//
//   - victim.DefaultTiming gives ≈65.5k cycles per GIFT round, matching
//     the paper's measured ≈1.2 ms per round at 50 MHz;
//   - the 10 ms quantum is the paper's stated RTOS configuration; with
//     the round budget above it lands the single-SoC attacker's first
//     probe in rounds 2/4/8 at 10/25/50 MHz (paper Table II);
//   - NoC hop and link costs give a remote cache access of ≈400 ns at
//     50 MHz, the paper's measured MPSoC probe latency.
func DefaultParams(mhz uint64) Params {
	return Params{
		ClockMHz:           mhz,
		CacheLineBytes:     1,
		TableBase:          0x1000,
		Timing:             victim.DefaultTiming(),
		Quantum:            10 * sim.Millisecond,
		CtxSwitchCycles:    200,
		EvictionBase:       0x100000,
		BusCyclesPerAccess: 4,
		Mesh: noc.Config{
			Width:        3,
			Height:       3,
			RouterCycles: 2,
			LinkCycles:   1,
			FlitBytes:    4,
		},
		VictimTile:   noc.Coord{X: 0, Y: 0},
		CacheTile:    noc.Coord{X: 1, Y: 1},
		AttackerTile: noc.Coord{X: 2, Y: 2},
	}
}

// ProbeWindow is one attacker observation: the set of table lines found
// resident at time At, covering the victim's S-box accesses from round
// FirstRound (the round in progress when the preceding flush completed)
// through LastRound (the round in progress at the reload).
type ProbeWindow struct {
	FirstRound int
	LastRound  int
	Set        probe.LineSet
	At         sim.Time
}

// Session is the record of one victim encryption observed by the
// platform's attacker.
type Session struct {
	Ciphertext uint64
	Windows    []ProbeWindow
	// CacheStats holds the shared cache's activity counters for this
	// session (each session runs on a fresh cache, so the counters are
	// per-encryption; PlatformChannel accumulates them across sessions).
	CacheStats cache.Stats
}

// windowsCovering returns the union of the line sets of all windows
// whose round span includes round r (an attacker that knows its timing
// selects exactly these probes).
func windowsCovering(ws []ProbeWindow, r int) probe.LineSet {
	var set probe.LineSet
	hit := false
	for _, w := range ws {
		if w.FirstRound <= r && r <= w.LastRound {
			set = set.Union(w.Set)
			hit = true
		}
	}
	if !hit {
		for _, w := range ws {
			set = set.Union(w.Set)
		}
	}
	return set
}
