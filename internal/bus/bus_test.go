package bus

import (
	"testing"

	"grinch/internal/sim"
)

func TestSingleTransaction(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.ClockMHz(10) // 100 ns period
	b := New(k, clk)
	var elapsed sim.Time
	k.Spawn("m", func(p *sim.Proc) {
		elapsed = b.Transact(p, 4)
	})
	k.Run()
	if want := 4 * 100 * sim.Nanosecond; elapsed != want {
		t.Fatalf("transaction took %v, want %v", elapsed, want)
	}
	s := b.Stats()
	if s.Transactions != 1 || s.WaitTime != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestContentionSerializes(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.ClockMHz(10)
	b := New(k, clk)
	var doneA, doneB sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		b.Transact(p, 10) // 1 µs
		doneA = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		b.Transact(p, 10)
		doneB = p.Now()
	})
	k.Run()
	if doneA != sim.Microsecond {
		t.Fatalf("first transaction finished at %v", doneA)
	}
	if doneB != 2*sim.Microsecond {
		t.Fatalf("second transaction finished at %v, want serialized 2µs", doneB)
	}
	if w := b.Stats().WaitTime; w != sim.Microsecond {
		t.Fatalf("wait time %v, want 1µs", w)
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.ClockMHz(50)
	b := New(k, clk)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		k.Spawn(name, func(p *sim.Proc) {
			b.Transact(p, 5)
			order = append(order, name)
		})
	}
	k.Run()
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("grant order %v", order)
	}
}

func TestIdleGapsDoNotAccumulate(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.ClockMHz(10)
	b := New(k, clk)
	var second sim.Time
	k.Spawn("m", func(p *sim.Proc) {
		b.Transact(p, 1)
		p.Wait(10 * sim.Microsecond) // bus idles
		start := p.Now()
		b.Transact(p, 1)
		second = p.Now() - start
	})
	k.Run()
	if second != 100*sim.Nanosecond {
		t.Fatalf("post-idle transaction took %v, want 100ns (no stale tail)", second)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.ClockMHz(10)
	b := New(k, clk)
	k.Spawn("m", func(p *sim.Proc) {
		b.Transact(p, 10) // busy 1µs
		p.Wait(sim.Microsecond)
	})
	k.Run()
	if u := b.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}
