package metrics

import (
	"sort"
	"sync"
)

// Series is one snapshot row: a (name, labels) identity plus the
// kind-specific value. Integer-valued throughout, so serialized
// snapshots of deterministic inputs are byte-identical across runs.
type Series struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	// Wall marks a series fed by wall-clock samples; Deterministic
	// filters these out of snapshot identity.
	Wall bool `json:"wall,omitempty"`
	// Value is the counter total.
	Value uint64 `json:"value,omitempty"`
	// Gauge is the gauge value.
	Gauge int64 `json:"gauge,omitempty"`
	// Bounds/Counts/Sum describe a histogram: Counts has
	// len(Bounds)+1 entries, the last being the +Inf overflow bucket,
	// and Sum is the sum of observed values.
	Bounds []uint64 `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Sum    uint64   `json:"sum,omitempty"`
	// Help is exposition metadata, not wire payload.
	Help string `json:"-"`
}

// Key is the series identity: name plus sorted label signature.
func (s Series) Key() string { return s.Name + "\x00" + labelSig(s.Labels) }

// Count returns a histogram series' total observation count.
func (s Series) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-th quantile (q in [0,1]) of a histogram
// series by linear interpolation within the containing bucket. Values
// in the +Inf overflow bucket clamp to the last finite bound. Returns
// 0 for empty histograms.
func (s Series) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				// Overflow bucket: the true value is above the last
				// bound; clamp rather than extrapolate.
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := 0.0
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*((rank-cum)/float64(c))
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Mean returns a histogram series' mean observed value (0 when empty).
func (s Series) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Deterministic filters wall-quarantined series out: what remains is
// the snapshot's deterministic identity — a pure function of (spec,
// seed) for the simulation-fed instruments in this repository.
func Deterministic(series []Series) []Series {
	out := make([]Series, 0, len(series))
	for _, s := range series {
		if !s.Wall {
			out = append(out, s)
		}
	}
	return out
}

// Sum merges series groups by identity: counters add, gauges add,
// histograms add bucket-wise (identically-bounded histograms only —
// all instruments in this module use the canonical bucket sets, so
// mismatched bounds indicate version skew and the first shape wins).
// The result is sorted by identity.
func Sum(groups ...[]Series) []Series {
	byKey := map[string]*Series{}
	var keys []string
	for _, group := range groups {
		for _, s := range group {
			k := s.Key()
			acc := byKey[k]
			if acc == nil {
				cp := s
				cp.Counts = append([]uint64(nil), s.Counts...)
				byKey[k] = &cp
				keys = append(keys, k)
				continue
			}
			acc.Wall = acc.Wall || s.Wall
			if acc.Help == "" {
				acc.Help = s.Help
			}
			switch acc.Kind {
			case KindCounter:
				acc.Value += s.Value
			case KindGauge:
				acc.Gauge += s.Gauge
			case KindHistogram:
				if boundsEqual(acc.Bounds, s.Bounds) {
					for i := range s.Counts {
						acc.Counts[i] += s.Counts[i]
					}
					acc.Sum += s.Sum
				}
			}
		}
	}
	sort.Strings(keys)
	out := make([]Series, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// WithLabel returns the series re-labeled with (key, value) added to
// every row — how the coordinator scopes worker series under
// worker="id" before summing across the fleet.
func WithLabel(series []Series, key, value string) []Series {
	out := make([]Series, len(series))
	for i, s := range series {
		cp := s
		cp.Labels = sortLabels(append(append([]Label(nil), s.Labels...), L(key, value)))
		out[i] = cp
	}
	return out
}

// Find returns the first series with the given name and labels
// (subset match on labels), or a zero Series and false.
func Find(series []Series, name string, labels ...Label) (Series, bool) {
	for _, s := range series {
		if s.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, have := range s.Labels {
				if have == want {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Series{}, false
}

// Delta is one worker-telemetry update: the worker's cumulative series
// totals since process start, plus a per-worker monotone sequence
// number. Shipping cumulative totals (not increments) makes
// application idempotent — a retried batch, a dropped response, or a
// journal-replay after a coordinator restart can only re-deliver a
// state the store either already has (Seq ≤ last: ignored) or is
// strictly newer (replaces wholesale, no double-counting).
type Delta struct {
	Seq    uint64   `json:"seq"`
	Series []Series `json:"series,omitempty"`
}

// Store accumulates the latest cumulative Delta per source (worker)
// and merges across sources. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	sources map[string]*sourceEntry
}

type sourceEntry struct {
	seq    uint64
	series []Series
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{sources: map[string]*sourceEntry{}} }

// Apply installs a source's delta, reporting whether it was fresh. A
// delta whose Seq is not greater than the last applied Seq for the
// source is stale (a retried or replayed batch) and ignored.
func (st *Store) Apply(source string, d Delta) bool {
	if st == nil || source == "" {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.sources[source]
	if e == nil {
		e = &sourceEntry{}
		st.sources[source] = e
	} else if d.Seq <= e.seq {
		return false
	}
	e.seq = d.Seq
	e.series = append([]Series(nil), d.Series...)
	return true
}

// Sources lists the known source names, sorted.
func (st *Store) Sources() []string {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.sources))
	for name := range st.sources { //grinchvet:ignore maporder key collection; sorted on the next line
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Source returns the latest series for one source (nil if unknown).
func (st *Store) Source(name string) []Series {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.sources[name]
	if e == nil {
		return nil
	}
	return append([]Series(nil), e.series...)
}

// Merged sums the latest series across every source, with each
// source's rows additionally labeled worker="<source>" preserved as
// given — callers that want per-source attribution label before
// applying. The result is sorted by identity.
func (st *Store) Merged() []Series {
	if st == nil {
		return nil
	}
	groups := make([][]Series, 0)
	for _, name := range st.Sources() {
		groups = append(groups, st.Source(name))
	}
	return Sum(groups...)
}
