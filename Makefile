# Development targets. `make check` is what CI runs.

GO ?= go

.PHONY: check vet lint baseline build test race bench quick

check: vet lint build race

vet:
	$(GO) vet ./...

# grinchvet: the repo's own static analyzer (secret-dependent accesses,
# determinism). Fails on any finding not in grinchvet.baseline.
lint:
	$(GO) run ./cmd/grinchvet ./...

# Accept the current finding set as the new baseline (review the diff!).
baseline:
	$(GO) run ./cmd/grinchvet -write-baseline ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The platform models run coroutine-style simulation processes, so the
# race detector is the gate that keeps them honest.
race:
	$(GO) test -race ./...

# Serial-vs-pooled campaign execution of a small Table I grid.
bench:
	$(GO) test -bench BenchmarkTable1Campaign -benchtime 3x -run XXX ./internal/experiments/

# Fast smoke of the full paper reproduction.
quick:
	$(GO) run ./cmd/experiments -quick all
