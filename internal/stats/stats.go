// Package stats provides the small summary statistics the experiment
// harness reports over repeated attack trials.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// SummarizeUint64 converts and summarizes integer samples (encryption
// counts).
func SummarizeUint64(xs []uint64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0..100) of an ascending
// sorted sample, with linear interpolation between ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.0f mean=%.1f±%.1f min=%.0f max=%.0f",
		s.N, s.Median, s.Mean, s.CI95(), s.Min, s.Max)
}

// Accum accumulates running statistics one sample at a time using
// Welford's algorithm, for streams that are observed incrementally and
// not retained (per-job durations in a long campaign, for example).
// The zero value is an empty accumulator. Unlike Summarize it cannot
// produce a median, which needs the full sample.
type Accum struct {
	n          int
	mean, m2   float64
	minV, maxV float64
}

// Add folds one sample into the accumulator.
func (a *Accum) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.minV, a.maxV = x, x
	} else {
		if x < a.minV {
			a.minV = x
		}
		if x > a.maxV {
			a.maxV = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples folded in.
func (a *Accum) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accum) Mean() float64 { return a.mean }

// Min returns the smallest sample (0 when empty).
func (a *Accum) Min() float64 { return a.minV }

// Max returns the largest sample (0 when empty).
func (a *Accum) Max() float64 { return a.maxV }

// StdDev returns the running sample standard deviation (0 for fewer
// than two samples).
func (a *Accum) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// GeoMean returns the geometric mean of positive samples (0 if any
// sample is non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
