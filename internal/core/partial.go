package core

import "errors"

// SegmentStatus is one per-segment elimination outcome inside a
// PartialResult: what the attack knew about segment (Round, Segment)
// when the run stopped.
type SegmentStatus struct {
	Round   int `json:"round"`
	Segment int `json:"segment"`
	// Converged reports whether the elimination pinned a single line.
	Converged bool `json:"converged"`
	// Line is the converged table line (-1 when not converged or not
	// attempted).
	Line int `json:"line"`
	// Observations is the elimination's observation count (summed over
	// restarts).
	Observations uint64 `json:"observations"`
	// Restarts / Retries are the recovery actions the segment consumed.
	Restarts int    `json:"restarts,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
	// Confidence is the converged survivor's presence-ratio separation
	// from the strongest eliminated line, in [0,1].
	Confidence float64 `json:"confidence,omitempty"`
}

// statusFor assembles a SegmentStatus from a target outcome's fields.
func statusFor(round, segment int, converged bool, line int, observations uint64, restarts int, retries uint64, conf float64) SegmentStatus {
	return SegmentStatus{
		Round:        round,
		Segment:      segment,
		Converged:    converged,
		Line:         line,
		Observations: observations,
		Restarts:     restarts,
		Retries:      retries,
		Confidence:   conf,
	}
}

// PartialResult is the graceful-degradation report of an attack that
// did not fully recover the key: instead of collapsing everything the
// run learned into ErrNoConvergence, it preserves how far the attack
// got — fully-resolved round keys, per-segment status of the failing
// pass, and a machine-readable reason.
type PartialResult struct {
	// Cipher labels the victim ("GIFT-64", "GIFT-128").
	Cipher string `json:"cipher"`
	// ResolvedRounds is how many round keys were fully recovered before
	// the failure (each pins 32 master-key bits for GIFT-64, 64 for
	// GIFT-128).
	ResolvedRounds int `json:"resolved_rounds"`
	// Segments holds the failing round pass's per-segment statuses, in
	// segment order; segments the pass never reached appear with
	// Line == -1 and zero observations.
	Segments []SegmentStatus `json:"segments"`
	// Encryptions is the total victim encryptions the run consumed.
	Encryptions uint64 `json:"encryptions"`
	// Reason classifies the stop: "no-convergence", "budget-exceeded",
	// "sim-deadline", "channel-transient" (retries exhausted on a
	// transient fault) or "error".
	Reason string `json:"reason"`
}

// Converged returns how many segments of the failing pass converged.
func (p *PartialResult) Converged() int {
	n := 0
	for _, s := range p.Segments {
		if s.Converged {
			n++
		}
	}
	return n
}

// Confidence returns the mean confidence over the failing pass's
// converged segments (0 when none converged).
func (p *PartialResult) Confidence() float64 {
	var sum float64
	n := 0
	for _, s := range p.Segments {
		if s.Converged {
			sum += s.Confidence
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// newPartialResult builds the header of a partial result.
func newPartialResult(cipher string, resolved int, err error, encryptions uint64) *PartialResult {
	return &PartialResult{
		Cipher:         cipher,
		ResolvedRounds: resolved,
		Encryptions:    encryptions,
		Reason:         Reason(err),
	}
}

// fillSegments copies the failing pass's statuses and pads the
// never-reached remainder of its round as unattempted. Statuses are
// appended in segment order by AttackRound, so the pad starts where
// they end.
func (p *PartialResult) fillSegments(statuses []SegmentStatus, round, total int) {
	p.Segments = append(p.Segments, statuses...)
	for g := len(statuses); g < total; g++ {
		p.Segments = append(p.Segments, SegmentStatus{Round: round, Segment: g, Line: -1})
	}
}

// Reason classifies an attack error into the stable PartialResult
// vocabulary ("budget-exceeded", "sim-deadline", "no-convergence",
// "channel-transient", "error"; "" for nil) so campaign layers report
// the same taxonomy for full errors as for partial results.
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBudgetExceeded):
		return "budget-exceeded"
	case errors.Is(err, ErrSimDeadline):
		return "sim-deadline"
	case errors.Is(err, ErrNoConvergence):
		return "no-convergence"
	case isTransient(err):
		return "channel-transient"
	default:
		return "error"
	}
}
