package bitutil

import (
	"testing"
	"testing/quick"
)

func TestBitSetBit(t *testing.T) {
	f := func(x uint64, i uint8, v uint64) bool {
		pos := uint(i) % 64
		y := SetBit(x, pos, v)
		if Bit(y, pos) != v&1 {
			return false
		}
		// all other bits unchanged
		return y&^(1<<pos) == x&^(1<<pos)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBit(t *testing.T) {
	f := func(x uint64, i uint8) bool {
		pos := uint(i) % 64
		return FlipBit(FlipBit(x, pos), pos) == x && Bit(FlipBit(x, pos), pos) == Bit(x, pos)^1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNibbleSetNibble(t *testing.T) {
	f := func(x uint64, i uint8, v uint64) bool {
		pos := uint(i) % 16
		y := SetNibble(x, pos, v)
		if Nibble(y, pos) != v&0xf {
			return false
		}
		mask := uint64(0xf) << (4 * pos)
		return y&^mask == x&^mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRot16(t *testing.T) {
	cases := []struct {
		x    uint16
		n    uint
		want uint16
	}{
		{0x0001, 1, 0x8000},
		{0x8000, 1, 0x4000},
		{0x1234, 0, 0x1234},
		{0x1234, 16, 0x1234},
		{0xabcd, 4, 0xdabc},
	}
	for _, c := range cases {
		if got := RotR16(c.x, c.n); got != c.want {
			t.Errorf("RotR16(%#x, %d) = %#x, want %#x", c.x, c.n, got, c.want)
		}
	}
	f := func(x uint16, n uint8) bool {
		k := uint(n) % 16
		return RotL16(RotR16(x, k), k) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParity(t *testing.T) {
	if Parity(0) != 0 || Parity(1) != 1 || Parity(3) != 0 || Parity(7) != 1 {
		t.Fatal("parity of small values wrong")
	}
	f := func(x uint64, i uint8) bool {
		return Parity(FlipBit(x, uint(i)%64)) == Parity(x)^1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWord128BitAccess(t *testing.T) {
	f := func(lo, hi uint64, i uint8, v uint64) bool {
		w := Word128{Lo: lo, Hi: hi}
		pos := uint(i) % 128
		y := w.SetBit(pos, v)
		return y.Bit(pos) == v&1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWord128NibbleAccess(t *testing.T) {
	f := func(lo, hi uint64, i uint8, v uint64) bool {
		w := Word128{Lo: lo, Hi: hi}
		pos := uint(i) % 32
		y := w.SetNibble(pos, v)
		if y.Nibble(pos) != v&0xf {
			return false
		}
		// other nibbles unchanged
		for j := uint(0); j < 32; j++ {
			if j != pos && y.Nibble(j) != w.Nibble(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWord128Word16(t *testing.T) {
	w := Word128{Lo: 0x3333222211110000, Hi: 0x7777666655554444}
	for i := uint(0); i < 8; i++ {
		want := uint16(0x1111 * i)
		if got := w.Word16(i); got != want {
			t.Errorf("Word16(%d) = %#x, want %#x", i, got, want)
		}
	}
	f := func(lo, hi uint64, i uint8, v uint16) bool {
		w := Word128{Lo: lo, Hi: hi}
		pos := uint(i) % 8
		y := w.SetWord16(pos, v)
		if y.Word16(pos) != v {
			return false
		}
		for j := uint(0); j < 8; j++ {
			if j != pos && y.Word16(j) != w.Word16(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWord128BytesRoundTrip(t *testing.T) {
	f := func(lo, hi uint64) bool {
		w := Word128{Lo: lo, Hi: hi}
		return Word128FromBytes(w.Bytes()) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Byte order: most significant byte first.
	w := Word128{Hi: 0x0102030405060708, Lo: 0x090a0b0c0d0e0f10}
	b := w.Bytes()
	for i := 0; i < 16; i++ {
		if b[i] != byte(i+1) {
			t.Fatalf("Bytes()[%d] = %#x, want %#x", i, b[i], i+1)
		}
	}
}

func TestPermuteBits64Identity(t *testing.T) {
	var id [64]uint8
	for i := range id {
		id[i] = uint8(i)
	}
	f := func(x uint64) bool { return PermuteBits64(x, &id) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteBits64PreservesPopcount(t *testing.T) {
	perm := rotPerm64(13)
	f := func(x uint64) bool {
		y := PermuteBits64(x, &perm)
		return popcount(y) == popcount(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func rotPerm64(k int) [64]uint8 {
	var p [64]uint8
	for i := range p {
		p[i] = uint8((i + k) % 64)
	}
	return p
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestInvertPerm64RoundTrip(t *testing.T) {
	perm := rotPerm64(29)
	inv := InvertPerm64(&perm)
	f := func(x uint64) bool {
		return PermuteBits64(PermuteBits64(x, &perm), &inv) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvertPerm64PanicsOnNonPermutation(t *testing.T) {
	var bad [64]uint8 // all zeros: not a permutation
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate entries")
		}
	}()
	InvertPerm64(&bad)
}

func TestInvertSBoxPanicsOnNonPermutation(t *testing.T) {
	bad := [16]uint8{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate entries")
		}
	}()
	InvertSBox(&bad)
}

func TestPermuteBits128RoundTrip(t *testing.T) {
	var perm [128]uint8
	for i := range perm {
		perm[i] = uint8((i + 41) % 128)
	}
	inv := InvertPerm128(&perm)
	f := func(lo, hi uint64) bool {
		w := Word128{Lo: lo, Hi: hi}
		return PermuteBits128(PermuteBits128(w, &perm), &inv) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXor(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi uint64) bool {
		a := Word128{Lo: aLo, Hi: aHi}
		b := Word128{Lo: bLo, Hi: bHi}
		return a.Xor(b).Xor(b) == a && a.Xor(a) == (Word128{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// naiveTranspose64 is the bit-by-bit reference for Transpose64.
func naiveTranspose64(a *[64]uint64) [64]uint64 {
	var out [64]uint64
	for i := uint(0); i < 64; i++ {
		for j := uint(0); j < 64; j++ {
			out[i] |= Bit(a[j], i) << j
		}
	}
	return out
}

func TestTranspose64AgainstNaive(t *testing.T) {
	var a [64]uint64
	// A deterministic full-entropy fill (SplitMix64 constants) plus a few
	// structured patterns.
	x := uint64(0x9e3779b97f4a7c15)
	for i := range a {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		a[i] = x
	}
	want := naiveTranspose64(&a)
	got := a
	Transpose64(&got)
	if got != want {
		t.Fatal("Transpose64 disagrees with the naive transpose")
	}
}

func TestTranspose64Structured(t *testing.T) {
	cases := [][64]uint64{
		{},            // all zero
		{0: 1},        // single bit at (0,0)
		{63: 1 << 63}, // single bit at (63,63)
		{5: 1 << 17},  // single off-diagonal bit
	}
	for _, a := range cases {
		want := naiveTranspose64(&a)
		got := a
		Transpose64(&got)
		if got != want {
			t.Fatalf("Transpose64 disagrees with naive transpose on %v", a)
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	var a [64]uint64
	for i := range a {
		a[i] = uint64(i) * 0xbf58476d1ce4e5b9
	}
	b := a
	Transpose64(&b)
	Transpose64(&b)
	if a != b {
		t.Fatal("Transpose64 applied twice did not restore the input")
	}
}

func TestCompilePerm64MatchesTableWalk(t *testing.T) {
	// The GIFT-64 permutation's closed form, plus the identity and a
	// full reversal, exercise one-class, many-class and wraparound
	// rotation groupings.
	var gift64, ident, rev [64]uint8
	for i := 0; i < 64; i++ {
		gift64[i] = uint8(4*(i/16) + 16*((3*((i%16)/4)+i%4)%4) + i%4)
		ident[i] = uint8(i)
		rev[i] = uint8(63 - i)
	}
	for name, perm := range map[string]*[64]uint8{
		"gift64": &gift64, "identity": &ident, "reversal": &rev,
	} {
		groups := CompilePerm64(perm)
		x := uint64(0x0123456789abcdef)
		for i := 0; i < 200; i++ {
			if got, want := ApplyPerm64(x, groups), PermuteBits64(x, perm); got != want {
				t.Fatalf("%s: ApplyPerm64(%#x) = %#x, want %#x", name, x, got, want)
			}
			x = x*0x9e3779b97f4a7c15 + 1
		}
	}
}

func TestCompilePerm64ClassMasksPartition(t *testing.T) {
	var perm [64]uint8
	for i := 0; i < 64; i++ {
		perm[i] = uint8(4*(i/16) + 16*((3*((i%16)/4)+i%4)%4) + i%4)
	}
	var union uint64
	for _, g := range CompilePerm64(&perm) {
		if union&g.Mask != 0 {
			t.Fatalf("rotation class masks overlap at %#x", union&g.Mask)
		}
		union |= g.Mask
	}
	if union != ^uint64(0) {
		t.Fatalf("rotation class masks cover %#x, want all 64 bits", union)
	}
}
