// Package victim models the trusted process of the GRINCH threat model:
// a task that encrypts attacker-supplied plaintexts with the table-based
// GIFT-64 implementation, issuing every S-box lookup as a memory access
// into the platform's shared cache and consuming CPU cycles per round.
//
// The cycle budget per round is a calibration constant taken from the
// paper's own measurement ("the time between different rounds was about
// 1.2 milliseconds" at 50 MHz, §IV-B3 — i.e. ≈60k cycles per software
// round on the RISCY core); see DefaultTiming.
package victim

import (
	"grinch/internal/gift"
	"grinch/internal/probe"
)

// Executor abstracts how the victim's work is charged to a platform: an
// RTOS task on the single-processor SoC, a dedicated core behind a NoC
// on the MPSoC.
type Executor interface {
	// Exec consumes CPU cycles (possibly spanning preemptions).
	Exec(cycles uint64)
	// Access performs one memory read, advancing virtual time by the
	// full access path (bus or NoC plus cache) and returning the cycles
	// charged.
	Access(addr uint64) uint64
}

// Timing is the victim's per-round cycle budget.
type Timing struct {
	// ComputeCyclesPerRound is the non-memory work of one GIFT round
	// (permutation bit loops, key add, loop overhead on an IoT-class
	// core).
	ComputeCyclesPerRound uint64
	// LookupOverheadCycles is the address-computation overhead charged
	// before each of the 16 S-box lookups.
	LookupOverheadCycles uint64
}

// DefaultTiming is calibrated so one round takes ≈65.5k cycles, matching
// the paper's measured ≈1.2 ms per round at 50 MHz. With the paper's
// 10 ms RTOS quantum this reproduces Table II's single-SoC row:
// 100k/250k/500k quantum cycles at 10/25/50 MHz land the first probe in
// rounds 2/4/8.
func DefaultTiming() Timing {
	return Timing{
		ComputeCyclesPerRound: 65_000,
		LookupOverheadCycles:  20,
	}
}

// Victim is a GIFT-64 encryption service with progress tracking.
type Victim struct {
	cipher *gift.Cipher64 //grinch:secret
	table  probe.TableLayout
	timing Timing

	encryptions uint64
	round       int
}

// New builds a victim holding the cipher whose key the attacker is
// after. table locates the S-box lookup table in the shared memory map.
//
//grinch:secret cipher
func New(cipher *gift.Cipher64, table probe.TableLayout, timing Timing) *Victim {
	return &Victim{cipher: cipher, table: table, timing: timing}
}

// Table returns the S-box table layout.
func (v *Victim) Table() probe.TableLayout { return v.table }

// Encryptions returns how many encryptions have completed.
func (v *Victim) Encryptions() uint64 { return v.encryptions }

// CurrentRound returns the round currently executing (1..28), or 0 when
// idle. The attacker-side experiment code reads this to label probe
// windows; a real attacker recovers the same information from timing.
func (v *Victim) CurrentRound() int { return v.round }

// Encrypt runs one traced encryption on the executor: for every round,
// 16 S-box lookups hit the table through the platform's memory path,
// then the round's compute budget is consumed. Returns the ciphertext.
func (v *Victim) Encrypt(ex Executor, pt uint64) uint64 {
	rks := v.cipher.RoundKeys()
	s := pt
	for r := 0; r < gift.Rounds64; r++ {
		v.round = r + 1
		var sub uint64
		for seg := uint(0); seg < gift.Segments64; seg++ {
			idx := int(s >> (4 * seg) & 0xf)
			if v.timing.LookupOverheadCycles > 0 {
				ex.Exec(v.timing.LookupOverheadCycles)
			}
			ex.Access(v.table.EntryAddr(idx))
			sub |= uint64(gift.SBox[idx]) << (4 * seg)
		}
		ex.Exec(v.timing.ComputeCyclesPerRound)
		s = gift.AddRoundKey64(gift.PermBits64(sub), rks[r])
	}
	v.round = 0
	v.encryptions++
	return s
}

// RoundCycles returns the approximate CPU cycles one round consumes,
// excluding cache miss penalties (used by experiment sizing).
func (v *Victim) RoundCycles() uint64 {
	return v.timing.ComputeCyclesPerRound + 16*v.timing.LookupOverheadCycles
}
