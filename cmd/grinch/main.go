// Command grinch runs the GRINCH attack end to end against a simulated
// victim and prints the recovered key next to the truth.
//
// Usage:
//
//	grinch                           # ideal channel, random key
//	grinch -key <32 hex>             # attack a specific key
//	grinch -probe-round 3 -no-flush  # degraded probing conditions
//	grinch -line-words 2             # wide cache lines (hypothesis mode)
//	grinch -platform mpsoc -mhz 50   # attack over the full MPSoC model
//	grinch -first-round-only         # the Fig.3/Table I metric
//	grinch -json                     # machine-readable result record
//	grinch -trace run.trace.jsonl    # record the attack's event trace
//	grinch -faults plan.json         # inject structured channel faults
//	grinch -metrics run.prom         # dump attack/probe metrics at exit
//
// With -faults the observation channel is wrapped in a deterministic
// fault injector (internal/faults): the JSON plan declares burst noise,
// dropped windows, probe misalignment and transient failures, and the
// attack runs with quarantine and bounded restarts enabled so it
// degrades to a partial result instead of failing outright.
//
// With -json the run emits a single JSON object on stdout in the same
// schema as a campaign job result (internal/campaign.Result), so one-off
// runs and campaign sweeps land in the same analysis pipeline.
//
// With -trace the attack's internal trajectory — encryption boundaries,
// probe observations, candidate-set updates, segment recoveries — is
// streamed as JSONL events (internal/obs format) to the given file;
// render it with cmd/traceview. The trace carries encryption counters
// and simulated time only, never wall-clock readings, so it is
// byte-reproducible for a fixed seed.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"grinch/internal/bitutil"
	"grinch/internal/campaign"
	"grinch/internal/core"
	"grinch/internal/faults"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/obs/metrics"
	"grinch/internal/oracle"
	"grinch/internal/probe"
	"grinch/internal/rng"
	"grinch/internal/soc"
)

func main() {
	os.Exit(run())
}

// run is main's body with an exit code instead of os.Exit calls, so
// deferred work — the trace flush and the -metrics dump — runs on
// every exit path, success or failure.
func run() int {
	var (
		keyHex     = flag.String("key", "", "victim key (32 hex digits; random when empty)")
		seed       = flag.Uint64("seed", 1, "seed for plaintext randomization and key generation")
		probeRound = flag.Int("probe-round", 1, "cache probing round (oracle channel)")
		noFlush    = flag.Bool("no-flush", false, "disable the attacker's flush (noisier channel)")
		lineWords  = flag.Int("line-words", 1, "table entries per cache line (1, 2, 4, 8)")
		platform   = flag.String("platform", "oracle", "observation channel: oracle, soc or mpsoc")
		primitive  = flag.String("primitive", "flush-reload", "single-SoC probing primitive: flush-reload or prime-probe")
		mhz        = flag.Uint64("mhz", 10, "platform clock for -platform soc/mpsoc")
		budget     = flag.Uint64("budget", 1_000_000, "abort after this many victim encryptions")
		firstOnly  = flag.Bool("first-round-only", false, "recover only the 32 first-round key bits")
		threshold  = flag.Float64("threshold", 1.0, "candidate survival ratio (1 = strict intersection)")
		verbose    = flag.Bool("v", false, "print per-segment elimination progress")
		jsonOut    = flag.Bool("json", false, "emit one campaign-result JSON record instead of text")
		tracePath  = flag.String("trace", "", "JSON-lines event-trace file (internal/obs format; render with traceview)")
		faultsPath = flag.String("faults", "", "fault-plan JSON file (internal/faults schema); injects deterministic structured faults into the channel")
		promPath   = flag.String("metrics", "", "write the attack's metrics registry as Prometheus text exposition to this file at exit (\"-\" for stderr)")
	)
	flag.Parse()

	var tracer obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		w := obs.NewWriter(f)
		tracer = w
		defer func() {
			if err := w.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "grinch: flushing trace: %v\n", err)
			}
			f.Close()
		}()
	}

	var reg *metrics.Registry
	if *promPath != "" {
		// Without -metrics the registry stays nil and every emission
		// point in the attack and probe layers takes its zero-cost
		// branch.
		reg = metrics.New()
		defer func() {
			out := os.Stderr
			if *promPath != "-" {
				f, err := os.Create(*promPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "grinch: %v\n", err)
					return
				}
				defer f.Close()
				out = f
			}
			if err := metrics.WriteProm(out, reg.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "grinch: writing -metrics: %v\n", err)
			}
		}()
	}

	r := rng.New(*seed)
	var key bitutil.Word128
	if *keyHex == "" {
		key = bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	} else {
		b, err := hex.DecodeString(*keyHex)
		if err != nil || len(b) != 16 {
			fatalf("bad -key: need 32 hex digits")
		}
		var arr [16]byte
		copy(arr[:], b)
		key = bitutil.Word128FromBytes(arr)
	}

	ch, err := buildChannel(key, *platform, *primitive, *mhz, *probeRound, !*noFlush, *lineWords, r.Uint64(), tracer, reg)
	if err != nil {
		fatalf("%v", err)
	}

	var inj *faults.Injector
	if *faultsPath != "" {
		data, err := os.ReadFile(*faultsPath)
		if err != nil {
			fatalf("%v", err)
		}
		plan, err := faults.ParsePlan(data)
		if err != nil {
			fatalf("%v", err)
		}
		inj = faults.NewInjector(ch, plan, *seed)
		inj.SetTracer(tracer)
		ch = inj
	}

	cfg := core.Config{
		Seed:        r.Uint64(),
		TotalBudget: *budget,
		Threshold:   *threshold,
		Tracer:      tracer,
		Metrics:     reg,
	}
	if *threshold < 1 {
		// Tolerant thresholds need a statistical floor before any
		// decision is meaningful.
		cfg.MinObservations = 48
	}
	if inj != nil && !inj.Plan().Empty() {
		// A faulted channel gets the robustness defaults: retry
		// transient failures a few times, discard degenerate
		// observations, and allow bounded per-target restarts.
		cfg.Retry = core.RetryPolicy{MaxAttempts: 3, BackoffPS: 1000}
		cfg.Quarantine = true
		cfg.MaxRestarts = 2
	}
	if *verbose {
		cfg.Progress = func(cipher string, round, segment int, converged bool, line int, obs uint64) {
			status := "✓"
			if !converged {
				status = "✗"
			}
			fmt.Printf("  %s round %d segment %2d: line %2d after %d observations %s\n",
				cipher, round, segment, line, obs, status)
		}
	}
	attacker, err := core.NewAttacker(ch, cfg)
	if err != nil {
		fatalf("%v", err)
	}

	// record mirrors a campaign job result so a single run slots into
	// the same analysis pipeline as a sweep (schema of
	// internal/campaign.Result; job index 0 of a one-job grid).
	record := campaign.Result{
		Point: campaign.Point{
			Kind:       "recovery",
			Platform:   *platform,
			MHz:        *mhz,
			LineWords:  *lineWords,
			Flush:      !*noFlush,
			ProbeRound: *probeRound,
		},
		Seed: *seed,
	}
	if *firstOnly {
		record.Point.Kind = "first-round"
	}
	if inj != nil {
		record.Point.Fault = inj.Plan().Name
	}

	kb := key.Bytes()
	if !*jsonOut {
		fmt.Printf("victim key:      %x\n", kb)
		fmt.Printf("channel:         %s (probe round %d, flush %v, %d-word lines, %d observable lines)\n",
			*platform, *probeRound, !*noFlush, *lineWords, ch.Lines())
	}

	start := time.Now() //grinchvet:ignore wallclock CLI wall-time reporting only
	if *firstOnly {
		out, err := attacker.AttackRound(1, nil, nil)
		record.DurationNS = time.Since(start).Nanoseconds() //grinchvet:ignore wallclock CLI wall-time reporting only
		if inj != nil {
			record.Faults = inj.Stats().Total()
			record.Reason = core.Reason(err)
		}
		if err != nil {
			if *jsonOut {
				record.Encryptions = attacker.Encryptions()
				record.DroppedOut = true
				emitJSON(record)
				return 1
			}
			fmt.Fprintf(os.Stderr, "grinch: first-round attack failed: %v\n", err)
			return 1
		}
		want := gift.ExpandKey64(key)[0]
		record.Encryptions = out.Encryptions
		if rk, ok := out.Unique(); ok {
			record.Correct = rk.U == want.U && rk.V == want.V
			if *jsonOut {
				emitJSON(record)
				return 0
			}
			status := "MATCH"
			//grinchvet:ignore secret-branch ground-truth verification of the recovered key
			if !record.Correct {
				status = "MISMATCH"
			}
			//grinchvet:ignore wallclock CLI wall-time reporting only
			fmt.Printf("first-round attack: %d encryptions, %v wall time\n", out.Encryptions, time.Since(start).Round(time.Millisecond))
			fmt.Printf("recovered rk1:   U=%04x V=%04x (%s)\n", rk.U, rk.V, status)
		} else {
			if *jsonOut {
				emitJSON(record)
				return 0
			}
			//grinchvet:ignore wallclock CLI wall-time reporting only
			fmt.Printf("first-round attack: %d encryptions, %v wall time\n", out.Encryptions, time.Since(start).Round(time.Millisecond))
			fmt.Printf("recovered rk1 with per-segment candidates (wide lines): %v\n", out.Cands)
		}
		return 0
	}

	var (
		res     core.KeyResult
		partial *core.PartialResult
	)
	if inj != nil {
		// Under fault injection the attack degrades gracefully: a failed
		// run still reports which round keys and segments were recovered.
		res, partial = attacker.RecoverKeyGraceful()
		record.Faults = inj.Stats().Total()
	} else {
		res, err = attacker.RecoverKey()
	}
	record.DurationNS = time.Since(start).Nanoseconds() //grinchvet:ignore wallclock CLI wall-time reporting only
	if partial != nil {
		record.Encryptions = partial.Encryptions
		record.DroppedOut = true
		record.Partial = true
		record.Reason = partial.Reason
		record.ResolvedRounds = partial.ResolvedRounds
		record.SegmentsConverged = partial.Converged()
		record.Confidence = partial.Confidence()
		if *jsonOut {
			emitJSON(record)
			return 1
		}
		fmt.Printf("partial result:  %s after %d encryptions (%d faults injected)\n",
			partial.Reason, partial.Encryptions, record.Faults)
		fmt.Printf("                 %d round keys resolved; %d/%d segments of the next round converged (mean confidence %.2f)\n",
			partial.ResolvedRounds, partial.Converged(), len(partial.Segments), partial.Confidence())
		return 1
	}
	if err != nil {
		if *jsonOut {
			record.Encryptions = attacker.Encryptions()
			record.DroppedOut = true
			emitJSON(record)
			return 1
		}
		fmt.Fprintf(os.Stderr, "grinch: attack failed after %d encryptions: %v\n", attacker.Encryptions(), err)
		return 1
	}
	record.Encryptions = res.Encryptions
	record.Correct = res.Key == key
	if *jsonOut {
		emitJSON(record)
		//grinchvet:ignore secret-branch ground-truth verification of the recovered key
		if !record.Correct {
			return 1
		}
		return 0
	}
	rb := res.Key.Bytes()
	fmt.Printf("recovered key:   %x\n", rb)
	fmt.Printf("encryptions:     %d (paper: <400 under ideal conditions)\n", res.Encryptions)
	fmt.Printf("round passes:    %d\n", res.RoundsAttacked)
	//grinchvet:ignore wallclock CLI wall-time reporting only
	fmt.Printf("wall time:       %v\n", time.Since(start).Round(time.Millisecond))
	if res.Key == key {
		fmt.Println("result:          FULL KEY RECOVERED")
	} else {
		fmt.Println("result:          MISMATCH")
		return 1
	}
	return 0
}

// emitJSON prints one campaign-result record on stdout.
func emitJSON(r campaign.Result) {
	b, err := json.Marshal(r)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(b))
}

func buildChannel(key bitutil.Word128, platform, primitive string, mhz uint64, probeRound int, flush bool, lineWords int, noiseSeed uint64, tracer obs.Tracer, reg *metrics.Registry) (probe.Channel, error) {
	switch platform {
	case "oracle":
		o, err := oracle.New(key, oracle.Config{
			ProbeRound: probeRound,
			Flush:      flush,
			LineWords:  lineWords,
			Seed:       noiseSeed,
		})
		if err != nil {
			return nil, err
		}
		o.SetTracer(tracer)
		return o, nil
	case "soc":
		p := soc.DefaultParams(mhz)
		p.CacheLineBytes = lineWords
		switch primitive {
		case "flush-reload":
			p.Primitive = soc.PrimitiveFlushReload
		case "prime-probe":
			p.Primitive = soc.PrimitivePrimeProbe
		default:
			return nil, fmt.Errorf("unknown primitive %q (flush-reload, prime-probe)", primitive)
		}
		s := soc.NewSingleSoC(key, p)
		s.SetMetrics(reg)
		return &soc.PlatformChannel{P: s, LineBytes: lineWords, Tracer: tracer}, nil
	case "mpsoc":
		p := soc.DefaultParams(mhz)
		p.CacheLineBytes = lineWords
		m := soc.NewMPSoC(key, p)
		m.SetMetrics(reg)
		return &soc.PlatformChannel{P: m, LineBytes: lineWords, Tracer: tracer}, nil
	}
	return nil, fmt.Errorf("unknown platform %q (oracle, soc, mpsoc)", platform)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "grinch: "+format+"\n", args...)
	os.Exit(1)
}
