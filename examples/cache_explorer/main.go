// Cache explorer: a walkthrough of the cache model underneath every
// platform in this repository — geometry, replacement, flushing, and
// why the S-box table's footprint decides the attack's fate (paper
// Table I).
//
//	go run ./examples/cache_explorer
package main

import (
	"fmt"
	"log"

	"grinch/internal/cache"
	"grinch/internal/gift"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

func main() {
	// The paper's shared L1: 1024 lines, 16-way set-associative.
	fmt.Println("paper L1 geometry: 1024 lines, 16 ways, 64 sets")
	fmt.Println()

	// 1. Hits, misses and eviction under LRU.
	c, err := cache.New(cache.Config{
		Sets: 4, Ways: 2, LineBytes: 4,
		HitLatency: 1, MissLatency: 30, FlushLatency: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tiny 4-set/2-way cache, 4-byte lines:")
	for _, addr := range []uint64{0x00, 0x00, 0x40, 0x80} {
		r := c.Access(addr)
		fmt.Printf("  access %#04x: hit=%-5v latency=%-2d set=%d evicted=%v\n",
			addr, r.Hit, r.Latency, r.Set, r.Eviction)
	}
	fmt.Printf("  stats: %+v\n\n", c.Stats())

	// 2. The S-box footprint across line sizes — the knob of Table I.
	table := probe.TableLayout{Base: 0x1000, EntryBytes: 1, Entries: 16}
	fmt.Println("GIFT S-box (16 one-byte entries) footprint vs line size:")
	for _, lineBytes := range []int{1, 2, 4, 8, 16} {
		lines := table.LinesIn(lineBytes)
		hidden := 0
		for w := lineBytes; w > 1; w >>= 1 {
			hidden++
		}
		fmt.Printf("  %2d-byte lines → %2d observable lines, %d low index bits hidden\n",
			lineBytes, lines, hidden)
	}
	fmt.Println("  (at 16 bytes the whole table is one line — countermeasure 1)")
	fmt.Println()

	// 3. Flush+Reload in action against a victim performing one GIFT
	// round of lookups.
	l1 := cache.MustNew(cache.PaperConfig(1))
	fr := &probe.FlushReload{Cache: l1, Table: table}
	fr.Flush()
	state := uint64(0x123456789abcdef0)
	for seg := uint(0); seg < 16; seg++ {
		idx := int(state >> (4 * seg) & 0xf)
		l1.Access(table.EntryAddr(idx))
	}
	observed, _ := fr.Reload()
	fmt.Printf("victim round state %016x\n", state)
	fmt.Printf("attacker observes touched table lines: %v\n", observed)
	fmt.Println("(each line number IS an S-box index at 1-byte lines — the leak GRINCH mines)")
	fmt.Println()

	// 4. Replacement policies differ under conflict pressure.
	fmt.Println("replacement policies under a conflict-heavy random workload:")
	src := rng.New(7)
	addrs := make([]uint64, 4000)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(256)) * 64 // all map to set 0
	}
	for _, name := range []string{"lru", "fifo", "plru", "random"} {
		cfg := cache.PaperConfig(1)
		cfg.Policy = cache.PolicyByName(name, 1)
		cc := cache.MustNew(cfg)
		for _, a := range addrs {
			cc.Access(a)
		}
		s := cc.Stats()
		fmt.Printf("  %-6s hit rate %.1f%%  evictions %d\n", name, 100*s.HitRate(), s.Evictions)
	}
	fmt.Println()
	fmt.Printf("GIFT-64 reminder: %d rounds × %d lookups per encryption feed this channel.\n",
		gift.Rounds64, gift.Segments64)
}
